#include "robust/checkpoint.hh"

#include <cerrno>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "util/json.hh"

namespace ibp {

namespace {

constexpr const char *kSchema = "ibp-checkpoint";
constexpr int kVersion = 1;

} // namespace

std::string
CheckpointMeta::mismatch(const CheckpointMeta &other) const
{
    if (slug != other.slug)
        return "slug '" + slug + "' vs '" + other.slug + "'";
    if (gitSha != other.gitSha)
        return "git SHA " + gitSha + " vs " + other.gitSha;
    if (std::fabs(eventScale - other.eventScale) > 1e-12) {
        return "event scale " + std::to_string(eventScale) + " vs " +
               std::to_string(other.eventScale);
    }
    if (quick != other.quick)
        return std::string("quick ") + (quick ? "true" : "false") +
               " vs " + (other.quick ? "true" : "false");
    return "";
}

CheckpointJournal::~CheckpointJournal()
{
    if (_file)
        std::fclose(_file);
}

Result<std::unique_ptr<CheckpointJournal>>
CheckpointJournal::open(const std::string &path,
                        const CheckpointMeta &meta)
{
    std::unique_ptr<CheckpointJournal> journal(new CheckpointJournal);
    journal->_path = path;

    bool fresh = true;
    bool rewrite = false;
    {
        std::ifstream in(path);
        if (in) {
            fresh = false;
            std::string line;
            std::size_t line_no = 0;
            while (std::getline(in, line)) {
                ++line_no;
                if (line.empty())
                    continue;
                Json entry;
                try {
                    entry = Json::parse(line);
                    if (line_no == 1) {
                        if (entry.stringOr("schema", "") != kSchema ||
                            static_cast<int>(entry.numberOr(
                                "version", -1)) != kVersion) {
                            return RunError::permanent(
                                "checkpoint '" + path +
                                "': not a version-" +
                                std::to_string(kVersion) +
                                " ibp checkpoint");
                        }
                        CheckpointMeta recorded;
                        recorded.slug = entry.stringOr("slug", "");
                        recorded.gitSha =
                            entry.stringOr("git_sha", "");
                        recorded.eventScale =
                            entry.numberOr("event_scale", 1.0);
                        recorded.quick =
                            entry.contains("quick") &&
                            entry.at("quick").asBool();
                        const std::string diff =
                            recorded.mismatch(meta);
                        if (!diff.empty()) {
                            return RunError::permanent(
                                "checkpoint '" + path +
                                "' belongs to a different run (" +
                                diff + "); delete it to start over");
                        }
                        continue;
                    }
                    const unsigned grid = static_cast<unsigned>(
                        entry.numberOr("grid", 0));
                    const Key key{grid, entry.stringOr("column", ""),
                                  entry.stringOr("benchmark", "")};
                    if (entry.contains("start")) {
                        // A start with no later completion is an
                        // attempt a prior incarnation died inside.
                        journal->_priorStarts[key] += 1;
                        continue;
                    }
                    journal->_cells[key] =
                        entry.at("miss").asNumber();
                } catch (const std::exception &) {
                    // A crash mid-append leaves one truncated final
                    // line; anything malformed before that means the
                    // file is not trustworthy. A truncated *header*
                    // (crash during the very first write) carries no
                    // cells, so the journal restarts from scratch.
                    if (in.peek() != std::istream::traits_type::eof()) {
                        return RunError::permanent(
                            "checkpoint '" + path +
                            "': corrupt line " +
                            std::to_string(line_no));
                    }
                    if (line_no == 1) {
                        fresh = true;
                        rewrite = true;
                    }
                    break;
                }
            }
            if (line_no == 0)
                fresh = true; // empty file: treat as new
            journal->_restored = journal->_cells.size();
        }
    }

    const std::filesystem::path target(path);
    if (target.has_parent_path()) {
        std::error_code ec;
        std::filesystem::create_directories(target.parent_path(), ec);
        if (ec) {
            return RunError::permanent(
                "checkpoint: cannot create directory '" +
                target.parent_path().string() + "': " + ec.message());
        }
    }
    journal->_file = std::fopen(path.c_str(), rewrite ? "w" : "a");
    if (!journal->_file) {
        return RunError::permanent("checkpoint: cannot open '" +
                                   path + "' for append: " +
                                   std::strerror(errno));
    }
    if (fresh) {
        Json header = Json::object();
        header.set("schema", kSchema);
        header.set("version", kVersion);
        header.set("slug", meta.slug);
        header.set("git_sha", meta.gitSha);
        header.set("event_scale", meta.eventScale);
        header.set("quick", meta.quick);
        const std::string line = header.dump() + "\n";
        if (std::fwrite(line.data(), 1, line.size(),
                        journal->_file) != line.size() ||
            std::fflush(journal->_file) != 0) {
            return RunError::permanent(
                "checkpoint: failed writing header to '" + path +
                "'");
        }
        fsync(fileno(journal->_file));
    }
    return journal;
}

std::optional<double>
CheckpointJournal::lookup(unsigned grid, const std::string &column,
                          const std::string &benchmark) const
{
    std::lock_guard<std::mutex> lock(_mutex);
    const auto it = _cells.find(Key{grid, column, benchmark});
    if (it == _cells.end())
        return std::nullopt;
    return it->second;
}

Result<void>
CheckpointJournal::append(const CheckpointCell &cell)
{
    Json entry = Json::object();
    entry.set("grid", cell.grid);
    entry.set("column", cell.column);
    entry.set("benchmark", cell.benchmark);
    // Json prints the shortest round-tripping decimal, so the rate
    // survives the journal bit-for-bit.
    entry.set("miss", cell.missPercent);
    const std::string line = entry.dump() + "\n";

    std::lock_guard<std::mutex> lock(_mutex);
    _cells[Key{cell.grid, cell.column, cell.benchmark}] =
        cell.missPercent;
    return appendLines(line);
}

Result<void>
CheckpointJournal::appendStart(const CheckpointStart &start)
{
    return appendStarts({start});
}

Result<void>
CheckpointJournal::appendStarts(
    const std::vector<CheckpointStart> &starts)
{
    if (starts.empty())
        return Result<void>();
    std::string lines;
    for (const CheckpointStart &start : starts) {
        Json entry = Json::object();
        entry.set("start", true);
        entry.set("grid", start.grid);
        entry.set("column", start.column);
        entry.set("benchmark", start.benchmark);
        lines += entry.dump() + "\n";
    }
    // _priorStarts is deliberately NOT updated: the count is frozen
    // at open() so it only reflects attempts of dead incarnations.
    std::lock_guard<std::mutex> lock(_mutex);
    return appendLines(lines);
}

unsigned
CheckpointJournal::startedCountPrior(
    unsigned grid, const std::string &column,
    const std::string &benchmark) const
{
    std::lock_guard<std::mutex> lock(_mutex);
    const auto it = _priorStarts.find(Key{grid, column, benchmark});
    return it == _priorStarts.end() ? 0 : it->second;
}

/** Write raw @p lines, flushed and fsynced. Caller holds _mutex. */
Result<void>
CheckpointJournal::appendLines(const std::string &lines)
{
    if (std::fwrite(lines.data(), 1, lines.size(), _file) !=
            lines.size() ||
        std::fflush(_file) != 0) {
        return RunError::permanent(
            "checkpoint: failed appending to '" + _path + "': " +
            std::strerror(errno));
    }
    // One fsync per append is cheap next to the seconds of
    // simulation the record represents, and bounds the loss after
    // SIGKILL to the in-flight cell.
    fsync(fileno(_file));
    return Result<void>();
}

} // namespace ibp
