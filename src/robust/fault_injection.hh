/**
 * @file
 * Deterministic fault injection for testing the recovery paths.
 *
 * The IBP_FAULT_INJECT environment variable arms probabilistic
 * failures at named sites of the harness. Spec grammar (clauses
 * separated by commas):
 *
 *   spec   := clause ("," clause)*
 *   clause := SITE ":" PROB [":" KIND] | "seed=" N
 *   SITE   := "trace" | "sim" | "fused" | "artifact"
 *                            (free-form; these are the sites wired
 *                             today - see docs/ROBUSTNESS.md)
 *   PROB   := failure probability per attempt, in [0, 1]
 *   KIND   := "transient" (default) | "permanent"
 *           | "crash" | "hang"
 *
 * Examples:
 *
 *   IBP_FAULT_INJECT=sim:0.1                   10% transient sim faults
 *   IBP_FAULT_INJECT=trace:0.05:permanent      5% permanent trace faults
 *   IBP_FAULT_INJECT=sim:0.2,artifact:0.5,seed=7
 *   IBP_FAULT_INJECT=sim:0.05:crash,sim:0.02:hang,seed=3
 *
 * `crash` and `hang` are process-fatal actions for chaos testing the
 * multi-process supervisor (docs/SERVICE.md): instead of throwing,
 * a tripped `crash` clause calls std::abort() and a tripped `hang`
 * clause sleeps for ~an hour while ignoring cooperative
 * cancellation, so only an external SIGKILL (the supervisor's hard
 * deadline) can clear it. Both hash the attempt number like
 * transient faults, so a retried incarnation of the same cell can
 * come up clean.
 *
 * Decisions are a pure hash of (seed, site, key, attempt): two runs
 * with the same spec fault the same cells, and a transient fault can
 * clear on the next attempt because the attempt number feeds the
 * hash (permanent faults ignore it, so they never clear). No global
 * RNG state is consumed, so arming faults cannot perturb the
 * simulated workloads themselves.
 */

#ifndef IBP_ROBUST_FAULT_INJECTION_HH
#define IBP_ROBUST_FAULT_INJECTION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "robust/error.hh"

namespace ibp {

/** What a tripped clause does to the calling process. */
enum class FaultAction
{
    Throw, ///< raise RunException (transient/permanent kinds)
    Crash, ///< std::abort() - exercises supervisor crash containment
    Hang,  ///< sleep ~1h ignoring cancellation - needs a hard kill
};

/** One armed site: fail @p probability of attempts with @p kind. */
struct FaultSite
{
    std::string site;
    double probability = 0.0;
    ErrorKind kind = ErrorKind::Transient;
    FaultAction action = FaultAction::Throw;
};

class FaultInjector
{
  public:
    /** A disarmed injector (every check passes). */
    FaultInjector() = default;

    /** Parse a spec; error on bad grammar. */
    static Result<FaultInjector> parse(const std::string &spec);

    /**
     * The process-wide injector, armed from IBP_FAULT_INJECT on
     * first use. A malformed spec is a startup configuration error
     * and fatal()s - silently ignoring it would un-test the very
     * paths the user asked to test.
     */
    static const FaultInjector &global();

    /**
     * Re-arm the process-wide injector (tests). Pass "" to disarm.
     * Not thread-safe against concurrent global() users; call only
     * from single-threaded test setup.
     */
    static void configureGlobal(const std::string &spec);

    bool armed() const { return !_sites.empty(); }

    /** True when a clause names @p site (fused-path gating: a
     *  sim-armed injector must force the per-cell reference path,
     *  but arming only other sites should not). */
    bool
    armedFor(const std::string &site) const
    {
        for (const FaultSite &armed_site : _sites) {
            if (armed_site.site == site)
                return true;
        }
        return false;
    }

    std::uint64_t seed() const { return _seed; }
    const std::vector<FaultSite> &sites() const { return _sites; }

    /**
     * Decide deterministically whether (site, key, attempt) fails.
     * Throws RunException when it does; returns normally otherwise.
     * A tripped `crash` clause never returns (std::abort); a tripped
     * `hang` clause blocks for ~an hour, immune to cancellation.
     */
    void check(const std::string &site, const std::string &key,
               unsigned attempt = 1) const;

    /** check() without the throw (used by tests and diagnostics). */
    bool wouldFail(const std::string &site, const std::string &key,
                   unsigned attempt, ErrorKind *kind = nullptr,
                   FaultAction *action = nullptr) const;

  private:
    std::vector<FaultSite> _sites;
    std::uint64_t _seed = 0;
};

} // namespace ibp

#endif // IBP_ROBUST_FAULT_INJECTION_HH
