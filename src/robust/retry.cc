#include "robust/retry.hh"

#include <algorithm>
#include <cstdlib>

namespace ibp {

double
RetryPolicy::backoffFor(unsigned next) const
{
    if (next <= 1)
        return 0.0;
    double seconds = initialBackoffSeconds;
    for (unsigned i = 2; i < next; ++i)
        seconds *= backoffMultiplier;
    return std::min(seconds, maxBackoffSeconds);
}

RetryPolicy
retryPolicyFromEnv()
{
    RetryPolicy policy;
    if (const char *env = std::getenv("IBP_MAX_ATTEMPTS")) {
        const long attempts = std::atol(env);
        if (attempts >= 1 && attempts <= 100)
            policy.maxAttempts = static_cast<unsigned>(attempts);
    }
    if (const char *env = std::getenv("IBP_CELL_DEADLINE")) {
        const double seconds = std::atof(env);
        if (seconds > 0.0)
            policy.cellDeadlineSeconds = seconds;
    }
    if (const char *env = std::getenv("IBP_POISON_THRESHOLD")) {
        const long threshold = std::atol(env);
        if (threshold >= 1 && threshold <= 100)
            policy.poisonThreshold =
                static_cast<unsigned>(threshold);
    }
    return policy;
}

} // namespace ibp
