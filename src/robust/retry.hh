/**
 * @file
 * Bounded-retry policy for transient cell failures.
 *
 * SuiteRunner wraps each (configuration x benchmark) cell in
 * runWithRetries(): transient errors (resource pressure, injected
 * faults) are retried up to maxAttempts with deterministic
 * exponential backoff; permanent and timeout errors fail the cell
 * immediately. The backoff sequence carries no jitter on purpose -
 * reproducibility of a faulted sweep matters more here than
 * thundering-herd avoidance, because every worker sleeps
 * independently.
 */

#ifndef IBP_ROBUST_RETRY_HH
#define IBP_ROBUST_RETRY_HH

#include <chrono>
#include <exception>
#include <thread>
#include <type_traits>

#include "robust/error.hh"

namespace ibp {

/** Retry and deadline policy for one simulation cell. */
struct RetryPolicy
{
    /** Total attempts per cell (first try included), >= 1. */
    unsigned maxAttempts = 3;

    /** Backoff before the second attempt, in seconds. */
    double initialBackoffSeconds = 0.005;

    /** Backoff growth factor per subsequent attempt. */
    double backoffMultiplier = 4.0;

    /** Backoff ceiling, in seconds. */
    double maxBackoffSeconds = 1.0;

    /**
     * Per-cell wall-clock deadline enforced by the SuiteRunner
     * watchdog, in seconds; 0 disables the watchdog.
     */
    double cellDeadlineSeconds = 0.0;

    /**
     * A resumed cell whose journal shows this many start records
     * from prior (dead) incarnations is poisoned: recorded as a
     * timeout FailedCell without another attempt, so one cell that
     * keeps killing the process cannot crash-loop the sweep.
     */
    unsigned poisonThreshold = 2;

    /** Backoff before attempt @p next (2-based), in seconds. */
    double backoffFor(unsigned next) const;
};

/**
 * Policy with the IBP_MAX_ATTEMPTS, IBP_CELL_DEADLINE and
 * IBP_POISON_THRESHOLD environment overrides applied (values are
 * clamped to sane ranges; garbage falls back to the defaults).
 */
RetryPolicy retryPolicyFromEnv();

/**
 * Run @p body under @p policy. @p body receives the 1-based attempt
 * number (fault-injection decisions hash it) and either returns T or
 * throws (RunException for classified errors; any other
 * std::exception is treated as permanent). Transient failures sleep
 * the policy's backoff and retry; the returned error's `attempts`
 * records how many tries were consumed.
 */
template <typename Body>
auto
runWithRetries(const RetryPolicy &policy, Body &&body)
    -> Result<decltype(body(1u))>
{
    RunError last = RunError::permanent("never attempted");
    const unsigned max_attempts =
        policy.maxAttempts == 0 ? 1 : policy.maxAttempts;
    for (unsigned attempt = 1; attempt <= max_attempts; ++attempt) {
        try {
            if constexpr (std::is_void_v<decltype(body(1u))>) {
                body(attempt);
                return Result<void>();
            } else {
                return body(attempt);
            }
        } catch (const RunException &exception) {
            last = exception.error();
        } catch (const std::exception &exception) {
            last = RunError::permanent(exception.what());
        }
        last.attempts = attempt;
        if (!last.retryable() || attempt == max_attempts)
            return last;
        const double seconds = policy.backoffFor(attempt + 1);
        if (seconds > 0.0) {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(seconds));
        }
    }
    return last;
}

} // namespace ibp

#endif // IBP_ROBUST_RETRY_HH
