/**
 * @file
 * Recoverable error model for the experiment harness.
 *
 * A multi-hour sweep must survive a malformed trace, a throwing
 * predictor factory, or a failed artifact write. libibp's historical
 * answer was fatal()/panic(), which kills the whole process; this
 * header provides the recoverable alternative:
 *
 *  - RunError: a classified error value (transient errors may be
 *    retried with backoff, permanent and timeout errors may not);
 *  - RunException: the throwing transport for RunError across code
 *    that cannot return a Result (worker lambdas, parsers);
 *  - Result<T>: an explicit value-or-error return for APIs that
 *    parse external input (traces, artifacts, specs).
 *
 * Policy: fatal() remains correct for unrecoverable *startup*
 * configuration errors in CLI front ends; anything that can fail
 * mid-sweep must go through RunError so SuiteRunner can isolate it.
 * See docs/ROBUSTNESS.md.
 */

#ifndef IBP_ROBUST_ERROR_HH
#define IBP_ROBUST_ERROR_HH

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace ibp {

/** How an error should be treated by the retry machinery. */
enum class ErrorKind
{
    Transient, ///< May succeed on retry (resource pressure, injected).
    Permanent, ///< Retrying is pointless (malformed input, bad spec).
    Timeout,   ///< A watchdog cancelled the attempt; never retried.
};

/** Printable name of an ErrorKind ("transient", ...). */
const char *errorKindName(ErrorKind kind);

/** A classified, recoverable error. */
struct RunError
{
    ErrorKind kind = ErrorKind::Permanent;
    std::string message;
    /** Attempts consumed before giving up (filled by the retrier). */
    unsigned attempts = 1;

    static RunError transient(std::string message);
    static RunError permanent(std::string message);
    static RunError timeout(std::string message);

    /** Only transient errors are worth another attempt. */
    bool retryable() const { return kind == ErrorKind::Transient; }

    /** "transient: message (after N attempts)" */
    std::string describe() const;
};

/** Exception transport for RunError through throwing code paths. */
class RunException : public std::runtime_error
{
  public:
    explicit RunException(RunError error)
        : std::runtime_error(error.message), _error(std::move(error))
    {
    }

    const RunError &error() const { return _error; }

  private:
    RunError _error;
};

/**
 * Value-or-RunError return type. Deliberately minimal: exactly the
 * surface the harness needs, no monadic combinators.
 */
template <typename T>
class Result
{
  public:
    Result(T value) : _value(std::move(value)) {}
    Result(RunError error) : _error(std::move(error)) {}
    Result(RunException exception) : _error(exception.error()) {}

    bool ok() const { return _value.has_value(); }
    explicit operator bool() const { return ok(); }

    /** Valid only when ok(); throws RunException otherwise. */
    T &value() &
    {
        requireOk();
        return *_value;
    }
    const T &value() const &
    {
        requireOk();
        return *_value;
    }
    T &&value() &&
    {
        requireOk();
        return std::move(*_value);
    }

    /** Valid only when !ok(). */
    const RunError &error() const { return *_error; }

  private:
    void
    requireOk() const
    {
        if (!_value)
            throw RunException(*_error);
    }

    std::optional<T> _value;
    std::optional<RunError> _error;
};

/** Result<void>: success carries no payload. */
template <>
class Result<void>
{
  public:
    Result() = default;
    Result(RunError error) : _error(std::move(error)) {}
    Result(RunException exception) : _error(exception.error()) {}

    bool ok() const { return !_error.has_value(); }
    explicit operator bool() const { return ok(); }
    const RunError &error() const { return *_error; }

  private:
    std::optional<RunError> _error;
};

} // namespace ibp

#endif // IBP_ROBUST_ERROR_HH
