#include "robust/fault_injection.hh"

#include <chrono>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "util/logging.hh"

namespace ibp {

namespace {

/** FNV-1a over a string; mixes site/key names into the decision. */
std::uint64_t
hashString(const std::string &text, std::uint64_t hash)
{
    for (const char c : text) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

/** splitmix64 finaliser: decorrelates the combined hash. */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

Result<FaultInjector>
FaultInjector::parse(const std::string &spec)
{
    FaultInjector injector;
    std::stringstream stream(spec);
    std::string clause;
    while (std::getline(stream, clause, ',')) {
        if (clause.empty())
            continue;
        if (clause.rfind("seed=", 0) == 0) {
            char *end = nullptr;
            injector._seed =
                std::strtoull(clause.c_str() + 5, &end, 10);
            if (end == clause.c_str() + 5 || *end != '\0') {
                return RunError::permanent(
                    "fault spec: bad seed in '" + clause + "'");
            }
            continue;
        }
        const auto first = clause.find(':');
        if (first == std::string::npos) {
            return RunError::permanent(
                "fault spec: expected SITE:PROB[:KIND] in '" +
                clause + "'");
        }
        FaultSite site;
        site.site = clause.substr(0, first);
        const auto second = clause.find(':', first + 1);
        const std::string prob_text = clause.substr(
            first + 1, second == std::string::npos
                           ? std::string::npos
                           : second - first - 1);
        char *end = nullptr;
        site.probability = std::strtod(prob_text.c_str(), &end);
        if (end == prob_text.c_str() || *end != '\0' ||
            site.probability < 0.0 || site.probability > 1.0) {
            return RunError::permanent(
                "fault spec: bad probability '" + prob_text +
                "' in '" + clause + "'");
        }
        if (second != std::string::npos) {
            const std::string kind = clause.substr(second + 1);
            if (kind == "transient") {
                site.kind = ErrorKind::Transient;
            } else if (kind == "permanent") {
                site.kind = ErrorKind::Permanent;
            } else if (kind == "crash") {
                // Process-fatal kinds roll like transient faults so
                // the retried incarnation of a cell can clear.
                site.kind = ErrorKind::Transient;
                site.action = FaultAction::Crash;
            } else if (kind == "hang") {
                site.kind = ErrorKind::Timeout;
                site.action = FaultAction::Hang;
            } else {
                return RunError::permanent(
                    "fault spec: unknown kind '" + kind + "' in '" +
                    clause + "'");
            }
        }
        injector._sites.push_back(std::move(site));
    }
    return injector;
}

namespace {

FaultInjector &
globalInstance()
{
    static FaultInjector injector = [] {
        const char *env = std::getenv("IBP_FAULT_INJECT");
        if (!env || !*env)
            return FaultInjector();
        Result<FaultInjector> parsed = FaultInjector::parse(env);
        if (!parsed.ok()) {
            fatal("IBP_FAULT_INJECT: %s",
                  parsed.error().message.c_str());
        }
        return std::move(parsed).value();
    }();
    return injector;
}

} // namespace

const FaultInjector &
FaultInjector::global()
{
    return globalInstance();
}

void
FaultInjector::configureGlobal(const std::string &spec)
{
    if (spec.empty()) {
        globalInstance() = FaultInjector();
        return;
    }
    Result<FaultInjector> parsed = parse(spec);
    if (!parsed.ok())
        fatal("fault spec: %s", parsed.error().message.c_str());
    globalInstance() = std::move(parsed).value();
}

bool
FaultInjector::wouldFail(const std::string &site,
                         const std::string &key, unsigned attempt,
                         ErrorKind *kind, FaultAction *action) const
{
    for (std::size_t index = 0; index < _sites.size(); ++index) {
        const FaultSite &armed = _sites[index];
        if (armed.site != site || armed.probability <= 0.0)
            continue;
        // The clause index decorrelates clauses that share a site
        // name (e.g. crash and hang both armed at "sim"): without
        // it they would roll the same number, and the lower
        // probability would be a pure subset of - shadowed by - the
        // higher one. Index 0 keeps the historical decisions.
        std::uint64_t hash = hashString(
            site, 0xcbf29ce484222325ULL +
                      0x632be59bd9b4e019ULL * index);
        hash = hashString(key, hash ^ _seed);
        // Permanent faults ignore the attempt number so they never
        // clear on retry; transient faults re-roll every attempt.
        // Process-fatal actions re-roll too: the supervisor feeds the
        // journalled start count into the attempt, so the retried
        // incarnation of a crashed/hung cell can come up clean.
        if (armed.kind == ErrorKind::Transient ||
            armed.action != FaultAction::Throw)
            hash ^= 0x9e3779b97f4a7c15ULL * attempt;
        const double roll =
            static_cast<double>(mix(hash) >> 11) * 0x1.0p-53;
        if (roll < armed.probability) {
            if (kind)
                *kind = armed.kind;
            if (action)
                *action = armed.action;
            return true;
        }
    }
    return false;
}

void
FaultInjector::check(const std::string &site, const std::string &key,
                     unsigned attempt) const
{
    ErrorKind kind = ErrorKind::Transient;
    FaultAction action = FaultAction::Throw;
    if (!wouldFail(site, key, attempt, &kind, &action))
        return;
    if (action == FaultAction::Crash) {
        warn("fault injection: crashing at %s/%s (attempt %u)",
             site.c_str(), key.c_str(), attempt);
        std::abort();
    }
    if (action == FaultAction::Hang) {
        // Sleep far past any sane deadline in short slices,
        // deliberately ignoring the cooperative cancel token: only
        // an external hard kill (the supervisor's SIGKILL ceiling)
        // clears an injected hang.
        warn("fault injection: hanging at %s/%s (attempt %u)",
             site.c_str(), key.c_str(), attempt);
        for (int slice = 0; slice < 3600 * 20; ++slice) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));
        }
    }
    const std::string message = "injected " +
                                std::string(errorKindName(kind)) +
                                " fault at " + site + "/" + key;
    throw RunException(RunError{kind, message, 1});
}

} // namespace ibp
