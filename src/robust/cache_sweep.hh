/**
 * @file
 * Size-capped LRU-by-mtime sweep for on-disk cache directories.
 *
 * The trace cache and the result store are content-addressed: a
 * configuration change mints new keys and the old entries are never
 * consulted again, so both directories grow without bound. The sweep
 * deletes oldest-first (by modification time) until the directory's
 * regular files fit under a byte budget.
 *
 * Armed by the IBP_CACHE_MAX_BYTES environment variable - off by
 * default - and invoked by the stores after each successful write.
 * Eviction is ATOMIC UNLINK ONLY: an entry is either fully present
 * or absent, never truncated or rewritten, so a concurrent reader
 * that already opened (or mmap'ed) a victim keeps a valid view via
 * POSIX unlink semantics, and one that loses the race to open sees
 * a clean miss. See docs/PERFORMANCE.md.
 */

#ifndef IBP_ROBUST_CACHE_SWEEP_HH
#define IBP_ROBUST_CACHE_SWEEP_HH

#include <cstdint>
#include <string>

#include "robust/error.hh"

namespace ibp {

struct CacheSweepStats
{
    std::uint64_t bytesBefore = 0;
    std::uint64_t bytesAfter = 0;
    unsigned filesRemoved = 0;
};

/**
 * The byte budget from IBP_CACHE_MAX_BYTES; 0 when unset, empty, or
 * unparsable (sweeping disabled). Re-read on every call so tests can
 * flip it between runs.
 */
std::uint64_t cacheMaxBytesFromEnv();

/**
 * Delete the oldest regular files directly inside @p directory until
 * their total size is at most @p maxBytes. Subdirectories are left
 * alone; a missing directory is a no-op. Unlink failures on a victim
 * (e.g. an external concurrent delete) are skipped, not fatal.
 */
Result<CacheSweepStats>
sweepDirectoryToBudget(const std::string &directory,
                       std::uint64_t maxBytes);

/**
 * Convenience for the stores' post-write hook: sweep @p directory to
 * the IBP_CACHE_MAX_BYTES budget when one is set, logging a warning
 * on sweep failure. No-op when the variable is unset.
 */
void maybeSweepCacheDirectory(const std::string &directory);

} // namespace ibp

#endif // IBP_ROBUST_CACHE_SWEEP_HH
