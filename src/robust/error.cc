#include "robust/error.hh"

namespace ibp {

const char *
errorKindName(ErrorKind kind)
{
    switch (kind) {
      case ErrorKind::Transient:
        return "transient";
      case ErrorKind::Permanent:
        return "permanent";
      case ErrorKind::Timeout:
        return "timeout";
    }
    return "unknown";
}

RunError
RunError::transient(std::string message)
{
    return RunError{ErrorKind::Transient, std::move(message), 1};
}

RunError
RunError::permanent(std::string message)
{
    return RunError{ErrorKind::Permanent, std::move(message), 1};
}

RunError
RunError::timeout(std::string message)
{
    return RunError{ErrorKind::Timeout, std::move(message), 1};
}

std::string
RunError::describe() const
{
    std::string out = errorKindName(kind);
    out += ": ";
    out += message;
    if (attempts > 1) {
        out += " (after ";
        out += std::to_string(attempts);
        out += " attempts)";
    }
    return out;
}

} // namespace ibp
