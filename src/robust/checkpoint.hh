/**
 * @file
 * Checkpoint/resume journal for interrupted sweeps.
 *
 * A CheckpointJournal is an append-only file of JSON lines. The
 * first line is a header binding the journal to one experiment
 * configuration (slug, git SHA, event scale, quick flag); every
 * subsequent line records one completed (grid, column, benchmark)
 * cell with its full-precision miss rate, or the *start* of a cell
 * attempt (a `start` line with no miss rate). SuiteRunner appends a
 * line (flushed and fsynced) after each cell completes, and on a
 * resumed run consults the journal before simulating, so a killed
 * sweep restarts where it died instead of from zero.
 *
 * Start lines are the crash forensics: a cell with N start records
 * from *prior* incarnations but no completion was in flight when
 * each of those incarnations died. The resuming run feeds that
 * count into fault-injection attempt numbers (so a deterministic
 * injected crash clears on the retried incarnation) and poisons
 * cells whose prior-start count reaches the retry policy's
 * threshold — a cell that keeps killing the process is recorded as
 * a FailedCell instead of crash-looping forever (docs/ROBUSTNESS.md).
 *
 * Grid ids disambiguate the repeated run() calls a bench makes with
 * identical column labels (e.g. fig11 sweeps table sizes row by
 * row); they are assigned in call order, which is deterministic.
 *
 * Crash tolerance: a process killed mid-append leaves at most one
 * truncated final line, which load() drops. A header that does not
 * match the resuming run is an error - resuming across different
 * binaries or trace scales would silently splice incomparable
 * numbers.
 */

#ifndef IBP_ROBUST_CHECKPOINT_HH
#define IBP_ROBUST_CHECKPOINT_HH

#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "robust/error.hh"

namespace ibp {

/** Identity a journal is bound to; all fields must match to resume. */
struct CheckpointMeta
{
    std::string slug;
    std::string gitSha;
    double eventScale = 1.0;
    bool quick = false;

    /** Empty string when compatible; otherwise what differs. */
    std::string mismatch(const CheckpointMeta &other) const;
};

/** One completed simulation cell. */
struct CheckpointCell
{
    unsigned grid = 0;
    std::string column;
    std::string benchmark;
    double missPercent = 0.0;
};

/** Identity of a cell attempt about to begin (start record). */
struct CheckpointStart
{
    unsigned grid = 0;
    std::string column;
    std::string benchmark;
};

class CheckpointJournal
{
  public:
    ~CheckpointJournal();
    CheckpointJournal(const CheckpointJournal &) = delete;
    CheckpointJournal &operator=(const CheckpointJournal &) = delete;

    /**
     * Open @p path for @p meta. A missing file starts a fresh
     * journal; an existing one is validated against @p meta and its
     * completed cells become resumable. Errors: unwritable path,
     * corrupt header, or a meta mismatch.
     */
    static Result<std::unique_ptr<CheckpointJournal>>
    open(const std::string &path, const CheckpointMeta &meta);

    /** Miss rate of a previously completed cell, if recorded. */
    std::optional<double> lookup(unsigned grid,
                                 const std::string &column,
                                 const std::string &benchmark) const;

    /** Durably append one completed cell. Thread-safe. */
    Result<void> append(const CheckpointCell &cell);

    /** Durably record that an attempt at @p start is beginning. */
    Result<void> appendStart(const CheckpointStart &start);

    /** Batched appendStart: one write + fsync for a whole fused
     *  chunk instead of one per member cell. Thread-safe. */
    Result<void>
    appendStarts(const std::vector<CheckpointStart> &starts);

    /**
     * Start records loaded from *prior* incarnations at open() time
     * for a cell with no completion record. Frozen at open: starts
     * appended by this incarnation are not counted, so the value is
     * stable however many in-process retries this run makes.
     */
    unsigned startedCountPrior(unsigned grid,
                               const std::string &column,
                               const std::string &benchmark) const;

    /** Cells restored from a previous run at open() time. */
    std::size_t restoredCells() const { return _restored; }

    const std::string &path() const { return _path; }

  private:
    CheckpointJournal() = default;

    Result<void> appendLines(const std::string &lines);

    using Key = std::tuple<unsigned, std::string, std::string>;

    std::string _path;
    std::FILE *_file = nullptr;
    mutable std::mutex _mutex;
    std::map<Key, double> _cells;
    std::map<Key, unsigned> _priorStarts;
    std::size_t _restored = 0;
};

} // namespace ibp

#endif // IBP_ROBUST_CHECKPOINT_HH
