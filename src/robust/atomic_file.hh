/**
 * @file
 * Crash-safe whole-file writes.
 *
 * writeFileAtomic() is the single tmp+fsync+atomic-rename path every
 * durable artifact in the harness goes through: JSON run artifacts
 * (src/report) and cached binary traces (src/trace) both use it.
 * Content lands in a temp file next to the destination (same
 * filesystem, so the final rename is atomic), is flushed and fsynced,
 * then renamed over the target. Readers either see the old file or
 * the complete new one - a crash mid-write can never leave a
 * truncated file behind.
 */

#ifndef IBP_ROBUST_ATOMIC_FILE_HH
#define IBP_ROBUST_ATOMIC_FILE_HH

#include <string>
#include <string_view>

#include "robust/error.hh"

namespace ibp {

/**
 * Atomically replace @p path with @p contents. Parent directories
 * are created recursively. Errors (unwritable directory, full disk,
 * failed rename) come back as a permanent RunError; the temp file is
 * removed on every failure path.
 */
Result<void> writeFileAtomic(const std::string &path,
                             std::string_view contents);

} // namespace ibp

#endif // IBP_ROBUST_ATOMIC_FILE_HH
