#include "robust/cache_sweep.hh"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <vector>

#include "util/logging.hh"

namespace ibp {

std::uint64_t
cacheMaxBytesFromEnv()
{
    const char *env = std::getenv("IBP_CACHE_MAX_BYTES");
    if (!env || !*env)
        return 0;
    char *end = nullptr;
    const unsigned long long parsed = std::strtoull(env, &end, 10);
    if (end == env || *end != '\0')
        return 0;
    return static_cast<std::uint64_t>(parsed);
}

Result<CacheSweepStats>
sweepDirectoryToBudget(const std::string &directory,
                       std::uint64_t max_bytes)
{
    namespace fs = std::filesystem;
    CacheSweepStats stats;

    std::error_code ec;
    if (!fs::exists(directory, ec) || ec)
        return stats;

    struct Entry
    {
        fs::path path;
        fs::file_time_type mtime;
        std::uint64_t size = 0;
    };
    std::vector<Entry> entries;
    for (fs::directory_iterator it(directory, ec), end;
         !ec && it != end; it.increment(ec)) {
        std::error_code probe;
        if (!it->is_regular_file(probe) || probe)
            continue;
        Entry entry;
        entry.path = it->path();
        entry.mtime = fs::last_write_time(entry.path, probe);
        if (probe)
            continue;
        entry.size = static_cast<std::uint64_t>(
            fs::file_size(entry.path, probe));
        if (probe)
            continue;
        stats.bytesBefore += entry.size;
        entries.push_back(std::move(entry));
    }
    if (ec) {
        return RunError::permanent("cannot scan cache directory '" +
                                   directory + "': " + ec.message());
    }

    stats.bytesAfter = stats.bytesBefore;
    if (stats.bytesAfter <= max_bytes)
        return stats;

    // Oldest first; equal mtimes (coarse filesystems) tie-break on
    // the path so the victim order is deterministic.
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  if (a.mtime != b.mtime)
                      return a.mtime < b.mtime;
                  return a.path < b.path;
              });

    for (const Entry &entry : entries) {
        if (stats.bytesAfter <= max_bytes)
            break;
        // Unlink only: a reader holding the file open (or mmap'ed)
        // keeps its complete view; the name simply becomes a miss.
        std::error_code unlink_ec;
        if (!fs::remove(entry.path, unlink_ec) || unlink_ec)
            continue;
        stats.bytesAfter -= std::min(stats.bytesAfter, entry.size);
        ++stats.filesRemoved;
    }
    return stats;
}

void
maybeSweepCacheDirectory(const std::string &directory)
{
    const std::uint64_t max_bytes = cacheMaxBytesFromEnv();
    if (max_bytes == 0)
        return;
    const auto swept = sweepDirectoryToBudget(directory, max_bytes);
    if (!swept.ok()) {
        warn("cache sweep of '%s' failed: %s", directory.c_str(),
             swept.error().describe().c_str());
    }
}

} // namespace ibp
