#include "robust/atomic_file.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include <unistd.h>

namespace ibp {

Result<void>
writeFileAtomic(const std::string &path, std::string_view contents)
{
    const std::filesystem::path target(path);
    if (target.has_parent_path()) {
        std::error_code ec;
        std::filesystem::create_directories(target.parent_path(), ec);
        if (ec) {
            return RunError::permanent(
                "cannot create directory '" +
                target.parent_path().string() + "': " + ec.message());
        }
    }

    const std::string temp = path + ".tmp";
    std::FILE *file = std::fopen(temp.c_str(), "wb");
    if (!file) {
        return RunError::permanent("cannot open '" + temp +
                                   "' for writing: " +
                                   std::strerror(errno));
    }
    const bool wrote =
        std::fwrite(contents.data(), 1, contents.size(), file) ==
            contents.size() &&
        std::fflush(file) == 0 && ::fsync(fileno(file)) == 0;
    const int close_status = std::fclose(file);
    if (!wrote || close_status != 0) {
        std::remove(temp.c_str());
        return RunError::permanent("failed writing '" + temp +
                                   "': " + std::strerror(errno));
    }
    if (std::rename(temp.c_str(), path.c_str()) != 0) {
        const std::string reason = std::strerror(errno);
        std::remove(temp.c_str());
        return RunError::permanent("cannot rename '" + temp +
                                   "' to '" + path + "': " + reason);
    }
    return Result<void>();
}

} // namespace ibp
