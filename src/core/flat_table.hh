/**
 * @file
 * Open-addressing flat hash map shared by every predictor table.
 *
 * The paper's design space is a large sweep over table geometries, so
 * one table probe is the innermost operation of the whole experiment
 * engine. std::unordered_map pays a node allocation per entry and a
 * pointer chase per probe; FlatMap stores everything in a single
 * arena (docs/PERFORMANCE.md):
 *
 *  - power-of-two capacity, linear probing on the low hash bits;
 *  - a one-byte tag per slot (0 = empty, else 0x80 | top 7 hash
 *    bits), so a probe usually rejects non-matching slots without
 *    touching the slot array at all;
 *  - tombstone-free deletion: erase() backward-shifts the cluster
 *    that follows the hole (Knuth's Algorithm R), so probe distance
 *    never degrades under erase/insert churn;
 *  - one allocation per growth holding tag array + slot array,
 *    rehashed at 7/8 load;
 *  - group probing (the Swiss-table trick): find()/findOrInsert()
 *    scan the tag array 16 or 32 bytes at a time with SSE2/AVX2
 *    compare+movemask (core/simd.hh picks the width at runtime;
 *    IBP_SIMD=off forces the original scalar scan). The tag array
 *    carries a 32-byte wrap-around mirror of its first bytes so a
 *    group load never branches on the table boundary. Candidate
 *    slots are visited in exactly the scalar probe order and the
 *    scan still stops at the first empty tag, so every outcome —
 *    hit, miss, insert position — is bit-identical to the scalar
 *    loop (the fuzz test in tests/core pins this).
 *
 * Slots are stored by value and moved with plain assignment, so both
 * Key and Value must be trivially copyable and default-constructible
 * (true for every use: TableEntry, SatCounter, pool indices). Not
 * thread-safe; the simulator owns one predictor per worker.
 */

#ifndef IBP_CORE_FLAT_TABLE_HH
#define IBP_CORE_FLAT_TABLE_HH

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "core/simd.hh"
#include "util/bits.hh"
#include "util/logging.hh"

namespace ibp {

/** Default hasher: SplitMix64 finalizer over an integral key. */
template <typename K>
struct FlatHash
{
    static_assert(std::is_integral_v<K>,
                  "FlatHash needs an integral key; pass a hasher");

    std::size_t
    operator()(const K &key) const
    {
        return static_cast<std::size_t>(
            mix64(static_cast<std::uint64_t>(key)));
    }
};

template <typename K, typename V, typename Hasher = FlatHash<K>>
class FlatMap
{
    struct Slot
    {
        K key{};
        V value{};
    };

  public:
    FlatMap() = default;

    FlatMap(const FlatMap &other) { *this = other; }

    FlatMap &
    operator=(const FlatMap &other)
    {
        if (this == &other)
            return *this;
        _hasher = other._hasher;
        if (other._capacity == 0) {
            _arena.reset();
            _tags = nullptr;
            _slots = nullptr;
            _capacity = 0;
            _mask = 0;
            _size = 0;
            _probeWidth = 0;
            return *this;
        }
        allocate(other._capacity);
        std::memcpy(_tags, other._tags, _capacity + kTagMirror);
        std::memcpy(static_cast<void *>(_slots), other._slots,
                    _capacity * sizeof(Slot));
        _size = other._size;
        return *this;
    }

    FlatMap(FlatMap &&other) noexcept { swap(other); }

    FlatMap &
    operator=(FlatMap &&other) noexcept
    {
        swap(other);
        return *this;
    }

    void
    swap(FlatMap &other) noexcept
    {
        std::swap(_arena, other._arena);
        std::swap(_tags, other._tags);
        std::swap(_slots, other._slots);
        std::swap(_capacity, other._capacity);
        std::swap(_mask, other._mask);
        std::swap(_size, other._size);
        std::swap(_probeWidth, other._probeWidth);
        std::swap(_hasher, other._hasher);
    }

    std::size_t size() const { return _size; }
    bool empty() const { return _size == 0; }
    std::size_t capacity() const { return _capacity; }

    /** Drop all entries; keeps the arena for reuse. */
    void
    clear()
    {
        // Stale slot payloads behind a zero tag are never compared,
        // so clearing the tag array alone empties the map.
        if (_capacity != 0)
            std::memset(_tags, 0, _capacity + kTagMirror);
        _size = 0;
    }

    /** Pre-size so @p count entries fit without rehashing. */
    void
    reserve(std::size_t count)
    {
        if (count == 0)
            return;
        // Invert the 7/8 load ceiling, then round up to a power of
        // two no smaller than the minimum capacity.
        const std::size_t needed =
            std::bit_ceil(count + count / 7 + 1);
        if (needed > _capacity)
            rehash(std::max(needed, kMinCapacity));
    }

    const V *
    find(const K &key) const
    {
        if (_size == 0)
            return nullptr;
        const std::size_t hash = _hasher(key);
        const std::uint8_t tag = tagFor(hash);
        std::size_t index = hash & _mask;
        if (_probeWidth != 0)
            return findGrouped(key, tag, index);
        while (true) {
            const std::uint8_t t = _tags[index];
            if (t == kEmptyTag)
                return nullptr;
            if (t == tag && _slots[index].key == key)
                return &_slots[index].value;
            index = (index + 1) & _mask;
        }
    }

    V *
    find(const K &key)
    {
        return const_cast<V *>(
            static_cast<const FlatMap *>(this)->find(key));
    }

    bool contains(const K &key) const { return find(key) != nullptr; }

    /**
     * Find the entry for @p key, default-constructing it if absent
     * (the try_emplace of this container). The returned reference is
     * valid until the next insert or erase.
     */
    V &
    findOrInsert(const K &key, bool &inserted)
    {
        if (_capacity == 0 || (_size + 1) * 8 > _capacity * 7)
            rehash(_capacity == 0 ? kMinCapacity : _capacity * 2);
        const std::size_t hash = _hasher(key);
        const std::uint8_t tag = tagFor(hash);
        std::size_t index = hash & _mask;
        if (_probeWidth != 0)
            return findOrInsertGrouped(key, tag, index, inserted);
        while (true) {
            const std::uint8_t t = _tags[index];
            if (t == kEmptyTag)
                return insertAt(index, tag, key, inserted);
            if (t == tag && _slots[index].key == key) {
                inserted = false;
                return _slots[index].value;
            }
            index = (index + 1) & _mask;
        }
    }

    /** Remove @p key; false when absent. Never leaves tombstones. */
    bool
    erase(const K &key)
    {
        if (_size == 0)
            return false;
        const std::size_t hash = _hasher(key);
        const std::uint8_t tag = tagFor(hash);
        std::size_t index = hash & _mask;
        while (true) {
            const std::uint8_t t = _tags[index];
            if (t == kEmptyTag)
                return false;
            if (t == tag && _slots[index].key == key)
                break;
            index = (index + 1) & _mask;
        }
        backwardShift(index);
        return true;
    }

    /** Visit every (key, value) pair, in unspecified order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::size_t i = 0; i < _capacity; ++i) {
            if (_tags[i] != kEmptyTag)
                fn(_slots[i].key, _slots[i].value);
        }
    }

  private:
    static constexpr std::uint8_t kEmptyTag = 0;
    static constexpr std::size_t kMinCapacity = 16;

    /** Wrap-around tag mirror behind the real array: byte
     *  capacity+m always equals byte (capacity+m) & mask, so a 16/32
     *  wide group load starting anywhere in [0, capacity) stays in
     *  bounds and sees exactly the wrapped tag sequence. */
    static constexpr std::size_t kTagMirror = 32;

    static std::uint8_t
    tagFor(std::size_t hash)
    {
        // Top 7 hash bits, disjoint from the low index bits; the
        // high bit keeps any real tag distinct from kEmptyTag.
        return static_cast<std::uint8_t>(
            0x80u | (hash >> (sizeof(std::size_t) * 8 - 7)));
    }

    /** Store a tag and keep the mirror coherent. Every tag write
     *  after allocate() must go through here. */
    void
    setTag(std::size_t index, std::uint8_t tag)
    {
        _tags[index] = tag;
        for (std::size_t m = index + _capacity; m < _capacity + kTagMirror;
             m += _capacity)
            _tags[m] = tag;
    }

    V &
    insertAt(std::size_t index, std::uint8_t tag, const K &key,
             bool &inserted)
    {
        setTag(index, tag);
        Slot &slot = _slots[index];
        slot.key = key;
        slot.value = V{};
        ++_size;
        inserted = true;
        return slot.value;
    }

    /** Candidate lanes of one tag group, in scalar probe order: tag
     *  matches strictly before the first empty slot. Sets
     *  @p emptyLane to the first empty lane (or the group width when
     *  the group holds none). */
    std::uint32_t
    groupCandidates(std::size_t index, std::uint8_t tag,
                    unsigned &emptyLane) const
    {
        const simd::TagGroup group =
            _probeWidth == 32 ? simd::scanTags32(_tags + index, tag)
                              : simd::scanTags16(_tags + index, tag);
        std::uint32_t matches = group.matches;
        if (group.empties != 0) {
            emptyLane = static_cast<unsigned>(
                std::countr_zero(group.empties));
            matches &= (std::uint32_t{1} << emptyLane) - 1;
        } else {
            emptyLane = _probeWidth;
        }
        return matches;
    }

    const V *
    findGrouped(const K &key, std::uint8_t tag,
                std::size_t index) const
    {
        while (true) {
            unsigned empty_lane = 0;
            std::uint32_t matches =
                groupCandidates(index, tag, empty_lane);
            while (matches != 0) {
                const unsigned lane = static_cast<unsigned>(
                    std::countr_zero(matches));
                const std::size_t slot = (index + lane) & _mask;
                if (_slots[slot].key == key)
                    return &_slots[slot].value;
                matches &= matches - 1;
            }
            if (empty_lane != _probeWidth)
                return nullptr;
            index = (index + _probeWidth) & _mask;
        }
    }

    V &
    findOrInsertGrouped(const K &key, std::uint8_t tag,
                        std::size_t index, bool &inserted)
    {
        while (true) {
            unsigned empty_lane = 0;
            std::uint32_t matches =
                groupCandidates(index, tag, empty_lane);
            while (matches != 0) {
                const unsigned lane = static_cast<unsigned>(
                    std::countr_zero(matches));
                const std::size_t slot = (index + lane) & _mask;
                if (_slots[slot].key == key) {
                    inserted = false;
                    return _slots[slot].value;
                }
                matches &= matches - 1;
            }
            if (empty_lane != _probeWidth) {
                return insertAt((index + empty_lane) & _mask, tag,
                                key, inserted);
            }
            index = (index + _probeWidth) & _mask;
        }
    }

    void
    allocate(std::size_t capacity)
    {
        // Checked here rather than at class scope so FlatMap members
        // of a class whose nested value type is still incomplete at
        // the member declaration (NSDMIs unparsed) still work.
        static_assert(std::is_trivially_copyable_v<Slot>,
                      "FlatMap slots are moved by assignment");
        static_assert(std::is_trivially_destructible_v<Slot>,
                      "FlatMap never runs slot destructors");
        static_assert(std::is_default_constructible_v<Slot>,
                      "FlatMap inserts default-constructed values");
        IBP_ASSERT(isPowerOfTwo(capacity),
                   "flat-map capacity %zu not a power of two",
                   capacity);
        static_assert(alignof(Slot) <= alignof(std::max_align_t),
                      "arena relies on operator new[] alignment");
        const std::size_t tag_bytes = capacity + kTagMirror;
        const std::size_t slots_offset =
            (tag_bytes + alignof(Slot) - 1) & ~(alignof(Slot) - 1);
        _arena = std::make_unique_for_overwrite<std::byte[]>(
            slots_offset + capacity * sizeof(Slot));
        _tags = reinterpret_cast<std::uint8_t *>(_arena.get());
        std::memset(_tags, 0, tag_bytes);
        _slots = reinterpret_cast<Slot *>(_arena.get() + slots_offset);
        for (std::size_t i = 0; i < capacity; ++i)
            new (&_slots[i]) Slot();
        _capacity = capacity;
        _mask = capacity - 1;
        // Probe width for this arena's lifetime: AVX2 32-wide only
        // when a group cannot lap the table twice, else the SSE2
        // 16-wide baseline; 0 keeps the scalar loops (IBP_SIMD=off
        // or a non-x86 build).
        const SimdLevel level = simdLevel();
        _probeWidth =
            level == SimdLevel::Scalar
                ? 0
                : ((level == SimdLevel::Avx2 && capacity >= 32) ? 32
                                                                : 16);
    }

    void
    rehash(std::size_t new_capacity)
    {
        std::unique_ptr<std::byte[]> old_arena = std::move(_arena);
        const std::uint8_t *old_tags = _tags;
        const Slot *old_slots = _slots;
        const std::size_t old_capacity = _capacity;
        allocate(new_capacity);
        _size = 0;
        for (std::size_t i = 0; i < old_capacity; ++i) {
            if (old_tags[i] != kEmptyTag)
                insertFresh(old_slots[i]);
        }
    }

    /** Insert a slot known to be absent (rehash path). */
    void
    insertFresh(const Slot &slot)
    {
        const std::size_t hash = _hasher(slot.key);
        std::size_t index = hash & _mask;
        while (_tags[index] != kEmptyTag)
            index = (index + 1) & _mask;
        setTag(index, tagFor(hash));
        _slots[index] = slot;
        ++_size;
    }

    /**
     * Close the hole at @p hole by shifting the following cluster
     * back. An entry at j whose home slot lies cyclically in
     * (hole, j] must stay put (it would become unreachable in front
     * of its home); everything else slides into the hole.
     */
    void
    backwardShift(std::size_t hole)
    {
        std::size_t i = hole;
        std::size_t j = hole;
        while (true) {
            j = (j + 1) & _mask;
            if (_tags[j] == kEmptyTag)
                break;
            const std::size_t home = _hasher(_slots[j].key) & _mask;
            const bool stays = i <= j ? (home > i && home <= j)
                                      : (home > i || home <= j);
            if (!stays) {
                _slots[i] = _slots[j];
                setTag(i, _tags[j]);
                i = j;
            }
        }
        setTag(i, kEmptyTag);
        --_size;
    }

    std::unique_ptr<std::byte[]> _arena;
    std::uint8_t *_tags = nullptr;
    Slot *_slots = nullptr;
    std::size_t _capacity = 0;
    std::size_t _mask = 0;
    std::size_t _size = 0;
    /** Group-probe width for this arena: 0 (scalar), 16 or 32. */
    std::uint32_t _probeWidth = 0;
    [[no_unique_address]] Hasher _hasher{};
};

} // namespace ibp

#endif // IBP_CORE_FLAT_TABLE_HH
