/**
 * @file
 * Second-level history tables.
 *
 * The paper explores four organisations (sections 3 and 5):
 *  - unconstrained: unlimited fully-associative storage (section 3);
 *  - bounded fully-associative with LRU replacement (section 5.1);
 *  - set-associative with per-set LRU and tags (section 5.2);
 *  - tagless: direct-mapped without tags, so a lookup always returns
 *    whatever the indexed slot holds (positive/negative interference).
 *
 * All tables map a Key to a TableEntry holding the predicted target,
 * the BTB-2bc hysteresis state, the hybrid confidence counter, and
 * the future-work "chosen" counter.
 */

#ifndef IBP_CORE_TABLE_HH
#define IBP_CORE_TABLE_HH

#include <cstdint>
#include <string>

#include "core/key.hh"
#include "util/bits.hh"
#include "util/sat_counter.hh"

namespace ibp {

/** One prediction entry. */
struct TableEntry
{
    Addr target = 0;
    bool valid = false;
    /** BTB-2bc update rule state (replace target after 2 misses). */
    HysteresisBit hysteresis;
    /** Hybrid metaprediction confidence (section 6.1). */
    SatCounter confidence;
    /** Future-work "chosen" counter (section 8.1). */
    SatCounter chosen;

    /** Reinitialise for a new key (confidence resets to zero). */
    void
    resetFor(unsigned confidenceBits, unsigned chosenBits)
    {
        target = 0;
        valid = false;
        hysteresis.reset();
        confidence = SatCounter(confidenceBits);
        chosen = SatCounter(chosenBits);
    }
};

/** Counter widths shared by all entries of a table. */
struct EntryCounterSpec
{
    unsigned confidenceBits = 2;
    unsigned chosenBits = 2;
};

/**
 * Abstract target table.
 *
 * Protocol per dynamic branch (enforced by the predictors):
 *   1. probe(key)  - read-only prediction lookup;
 *   2. access(key) - after the branch resolves, find-or-allocate the
 *      entry (touching replacement state); the caller then updates
 *      target/hysteresis/confidence in place.
 */
class TargetTable
{
  public:
    virtual ~TargetTable() = default;

    /**
     * Read-only lookup. Returns nullptr when no entry matches; for a
     * tagless table, returns the indexed slot whenever it is valid
     * (which is what makes interference possible).
     */
    virtual const TableEntry *probe(const Key &key) const = 0;

    /**
     * Find or allocate the entry for @p key, updating recency state.
     * When a new entry is created (cold slot or eviction),
     * @p replaced is set true and the entry arrives freshly reset
     * with valid == false; the caller fills in the target.
     */
    virtual TableEntry &access(const Key &key, bool &replaced) = 0;

    /**
     * Hint that probe(key) is imminent: start pulling the storage
     * this key indexes toward the cache. Purely advisory - no
     * observable state changes - so batch engines can issue one
     * prefetch per table before the probe loop and overlap the
     * misses (simulateMany runs a dozen-plus tables per record; their
     * combined working set does not fit L2).
     */
    virtual void prefetch(const Key &key) const { (void)key; }

    /** Number of valid entries currently stored. */
    virtual std::uint64_t occupancy() const = 0;

    /** Total entry capacity; 0 means unbounded. */
    virtual std::uint64_t capacity() const = 0;

    /** Forget everything. */
    virtual void reset() = 0;

    virtual std::string name() const = 0;
};

} // namespace ibp

#endif // IBP_CORE_TABLE_HH
