/**
 * @file
 * Lookup keys for history tables.
 *
 * Constrained predictors (sections 4-5 of the paper) form keys of at
 * most 54 bits (24-bit history pattern concatenated with a 30-bit
 * branch address, or their 30-bit xor), which fit in Key::lo exactly.
 *
 * Unconstrained full-precision predictors (section 3) use keys over
 * (table-id, p full 32-bit targets) - up to 600+ bits. We reduce those
 * to 128 bits with two independently-seeded FNV-1a hashes; at the
 * scale of any realistic trace the collision probability is below
 * 1e-20, so this is behaviourally identical to exact keys (DESIGN.md
 * section 1).
 */

#ifndef IBP_CORE_KEY_HH
#define IBP_CORE_KEY_HH

#include <cstdint>
#include <functional>

#include "util/bits.hh"

namespace ibp {

/** A table lookup key; exact for constrained predictors (hi == 0). */
struct Key
{
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;

    bool operator==(const Key &other) const = default;
};

/** Build an exact key from a <= 64-bit pattern. */
constexpr Key
makeExactKey(std::uint64_t bits)
{
    return Key{bits, 0};
}

/**
 * Build a 128-bit hashed key over a word sequence (table id followed
 * by full-precision history targets).
 */
inline Key
makeHashedKey(const std::uint64_t *words, unsigned count)
{
    // Distinct FNV offset bases decorrelate the two 64-bit halves.
    constexpr std::uint64_t seedA = 0xcbf29ce484222325ULL;
    constexpr std::uint64_t seedB = 0x84222325cbf29ce4ULL;
    return Key{fnv1a64(words, count, seedA),
               fnv1a64(words, count, seedB)};
}

struct KeyHash
{
    std::size_t
    operator()(const Key &key) const
    {
        return static_cast<std::size_t>(
            mix64(key.lo ^ (key.hi * 0x9e3779b97f4a7c15ULL)));
    }
};

} // namespace ibp

#endif // IBP_CORE_KEY_HH
