/**
 * @file
 * The paper's central contribution: a two-level indirect branch
 * predictor with a path-based (target-address) first-level history.
 *
 * The first level keeps the last p indirect-branch targets per
 * history set (sharing parameter s, section 3.2.1). The second level
 * is a target table addressed by a key formed from the compressed
 * history pattern and the branch address (sections 3.2.2, 4 and 5;
 * see pattern.hh). Updates follow the two-bit-counter rule unless
 * disabled.
 *
 * Two rejected section 3.3 variants are available behind flags so
 * the negative results can be reproduced: including the *branch
 * address* alongside each target in the history, and including the
 * targets of taken conditional branches in the history.
 */

#ifndef IBP_CORE_TWO_LEVEL_HH
#define IBP_CORE_TWO_LEVEL_HH

#include <memory>
#include <string>

#include "core/history_register.hh"
#include "core/pattern.hh"
#include "core/predictor.hh"
#include "core/table_spec.hh"

namespace ibp {

class SweepHistoryGroup;
class SweepKeyVariant;

/** What gets shifted into the history per executed indirect branch. */
enum class HistoryElement
{
    /** The resolved target only (the paper's choice). */
    TargetOnly,
    /** Branch address then target, as two elements (rejected 3.3). */
    TargetAndAddress,
};

/** Full configuration of a two-level predictor. */
struct TwoLevelConfig
{
    /** Key formation recipe (p, b, compressor, interleave, mix, h). */
    PatternSpec pattern;

    /** History-pattern sharing s in [2, 32]; 32 = global (paper). */
    unsigned historySharing = 32;

    /** Second-level table organisation. */
    TableSpec table;

    /** Apply the 2-bit-counter target-update rule (section 3.1). */
    bool hysteresis = true;

    /** Shift taken conditional-branch targets into the history. */
    bool includeConditionalTargets = false;

    HistoryElement historyElement = HistoryElement::TargetOnly;

    /** Width of the per-entry metaprediction confidence counter. */
    unsigned confidenceBits = 2;

    void validate() const;
    std::string describe() const;

    /**
     * Exact configuration equality. Two predictors with equal
     * configurations are identical state machines: fed the same
     * branch stream they hold the same tables, histories and
     * counters forever (the property SweepKernel::dedupe() exploits).
     */
    bool operator==(const TwoLevelConfig &other) const = default;
};

class TwoLevelPredictor final : public IndirectPredictor
{
  public:
    explicit TwoLevelPredictor(const TwoLevelConfig &config);

    Prediction predict(Addr pc) override;
    void update(Addr pc, Addr actual) override;
    void observeConditional(Addr pc, bool taken, Addr target) override;
    bool joinSweepKernel(SweepKernel &kernel) override;

    /** Conditionals only matter while the 3.3 variant still owns its
     *  history; bound columns fold them in through the kernel. */
    bool
    consumesConditionals() const override
    {
        return _config.includeConditionalTargets &&
               _sweepGroup == nullptr;
    }

    /** Bound to a sweep kernel (joinSweepKernel accepted). */
    bool sweepBound() const { return _sweepGroup != nullptr; }

    /** The dedup primary this column mirrors, nullptr when it owns
     *  its own state (see _sweepPrimary). For the lane engine. */
    TwoLevelPredictor *sweepPrimary() const { return _sweepPrimary; }

    void reset() override;
    std::string name() const override;

    std::uint64_t tableCapacity() const override
    {
        return stateOwner()->_table->capacity();
    }
    std::uint64_t tableOccupancy() const override
    {
        return stateOwner()->_table->occupancy();
    }

    const TwoLevelConfig &config() const { return _config; }

    /** The key the predictor would use for @p pc right now. */
    Key currentKey(Addr pc);

    /**
     * Direct state access for the lane engine (sim/simulator.cc),
     * which drives bound machines table-first: one key per shared
     * variant per record, then prefetch/probe/access on the owning
     * table without re-entering predict()/update(). Only meaningful
     * on a state owner (sweepPrimary() == nullptr).
     */
    SweepKeyVariant *sweepVariant() const { return _sweepVariant; }
    SweepHistoryGroup *sweepGroup() const { return _sweepGroup; }
    TargetTable &table() { return *_table; }
    bool replicated() const { return _replicated; }

    /**
     * Store @p pred as this record's memoized shared prediction, as
     * if predict() had just produced it (lane engine only). Keeps
     * the dedup contract alive when the lane engine probes the table
     * directly: any replica or generic reader consulting
     * sharedPredict() later in the record still sees the pre-update
     * answer.
     */
    void primeSharedPrediction(Addr pc, const Prediction &pred);

  private:
    void pushHistory(Addr pc, Addr target);
    void invalidateKeyCache() { _cacheValid = false; }

    /** The predictor whose table actually holds this column's state:
     *  the dedup primary when this is a replica, else this. */
    const TwoLevelPredictor *
    stateOwner() const
    {
        return _sweepPrimary != nullptr ? _sweepPrimary : this;
    }

    /** The raw table lookup predict() performs when it owns state. */
    Prediction lookup(Addr pc);

    /** Bound-mode predict: memoized per (group version, pc) so dedup
     *  replicas can mirror the primary's pre-update answer. */
    Prediction sharedPredict(Addr pc);

    TwoLevelConfig _config;
    PatternBuilder _builder;
    HistoryRegister _history;
    std::unique_ptr<TargetTable> _table;

    /**
     * Bound mode (joinSweepKernel accepted): the first-level history
     * lives in the shared group, pushHistory() is a no-op (the
     * simulation loop commits once per branch through the kernel) and
     * currentKey() delegates to the shared, version-memoized variant.
     * The local key cache below is bypassed - pushes no longer happen
     * here, so it would never be invalidated.
     */
    SweepHistoryGroup *_sweepGroup = nullptr;
    SweepKeyVariant *_sweepVariant = nullptr;

    /**
     * State deduplication (SweepKernel::dedupe()): when an
     * earlier-joined column has an equal TwoLevelConfig, this
     * predictor becomes its *replica* - predict() mirrors the
     * primary's memoized per-record prediction, update() is a
     * no-op, and occupancy/capacity report the
     * primary's table. Identical configurations fed the identical
     * record stream evolve identically, so every mirrored answer is
     * bit-for-bit what this column's own table would have produced.
     */
    TwoLevelPredictor *_sweepPrimary = nullptr;

    /** Set by SweepKernel::dedupe() on a primary that acquired at
     *  least one replica: only then is the prediction memo below
     *  maintained (columns nobody mirrors skip the memo stores). */
    bool _replicated = false;

    friend class SweepKernel;

    // Prediction memo (sharedPredict): built by the replicated
    // primary's own predict() before its update trains the table,
    // read by replicas later in the same record's member loop.
    std::uint64_t _predMemoVersion = 0;
    Addr _predMemoPc = 0;
    bool _predMemoValid = false;
    Prediction _predMemo;

    // predict()/update() pairs reuse the same key; cache it so the
    // pattern is assembled once per dynamic branch.
    bool _cacheValid = false;
    Addr _cachePc = 0;
    Key _cacheKey;
};

} // namespace ibp

#endif // IBP_CORE_TWO_LEVEL_HH
