/**
 * @file
 * Declarative table specification and factory.
 */

#ifndef IBP_CORE_TABLE_SPEC_HH
#define IBP_CORE_TABLE_SPEC_HH

#include <cstdint>
#include <memory>
#include <string>

#include "core/table.hh"

namespace ibp {

/** The table organisations studied in the paper. */
enum class TableKind
{
    Unconstrained,
    FullyAssoc,
    SetAssoc,
    Tagless,
};

std::string toString(TableKind kind);

/** Size/organisation of one second-level table. */
struct TableSpec
{
    TableKind kind = TableKind::Unconstrained;
    /** Total entries for bounded kinds (ignored for Unconstrained). */
    std::uint64_t entries = 0;
    /** Associativity for SetAssoc. */
    unsigned ways = 1;

    bool operator==(const TableSpec &other) const = default;

    /** Validate; calls fatal() on user error. */
    void validate() const;

    /** "unconstrained", "fullassoc-1024", "assoc4-512", "tagless-1K". */
    std::string describe() const;

    static TableSpec unconstrained();
    static TableSpec fullyAssoc(std::uint64_t entries);
    static TableSpec setAssoc(std::uint64_t entries, unsigned ways);
    static TableSpec tagless(std::uint64_t entries);
};

/**
 * Which storage implementation makeTable() instantiates:
 *  - Flat: the FlatMap / intrusive-LRU / tag-digest ports (default);
 *  - Reference: the retained node-based originals
 *    (core/reference_tables.hh), the behavioural oracle of the
 *    differential tests.
 *
 * The process-wide default is Flat, flipped to Reference by
 * compiling with -DIBP_REFERENCE_TABLES or by setting the
 * IBP_REFERENCE_TABLES environment variable to anything but "0";
 * setTableImplementation() overrides at runtime (used by the
 * differential tests and micro_throughput's flat-vs-reference
 * comparison). Both name() strings and all SimResult counters are
 * identical across the two, so the toggle is invisible in artifacts
 * except for the recorded table_impl field.
 */
enum class TableImpl
{
    Flat,
    Reference,
};

/** The implementation makeTable() currently instantiates. */
TableImpl tableImplementation();

/** Override the process-wide table implementation. Thread-safe, but
 * predictors built before the call keep their tables. */
void setTableImplementation(TableImpl impl);

/** "flat" / "reference". */
const char *tableImplName(TableImpl impl);

/** Name of the current implementation (for telemetry). */
const char *tableImplName();

/** Instantiate the table described by @p spec. */
std::unique_ptr<TargetTable> makeTable(const TableSpec &spec,
                                       EntryCounterSpec counters = {});

} // namespace ibp

#endif // IBP_CORE_TABLE_SPEC_HH
