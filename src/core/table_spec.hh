/**
 * @file
 * Declarative table specification and factory.
 */

#ifndef IBP_CORE_TABLE_SPEC_HH
#define IBP_CORE_TABLE_SPEC_HH

#include <cstdint>
#include <memory>
#include <string>

#include "core/table.hh"

namespace ibp {

/** The table organisations studied in the paper. */
enum class TableKind
{
    Unconstrained,
    FullyAssoc,
    SetAssoc,
    Tagless,
};

std::string toString(TableKind kind);

/** Size/organisation of one second-level table. */
struct TableSpec
{
    TableKind kind = TableKind::Unconstrained;
    /** Total entries for bounded kinds (ignored for Unconstrained). */
    std::uint64_t entries = 0;
    /** Associativity for SetAssoc. */
    unsigned ways = 1;

    /** Validate; calls fatal() on user error. */
    void validate() const;

    /** "unconstrained", "fullassoc-1024", "assoc4-512", "tagless-1K". */
    std::string describe() const;

    static TableSpec unconstrained();
    static TableSpec fullyAssoc(std::uint64_t entries);
    static TableSpec setAssoc(std::uint64_t entries, unsigned ways);
    static TableSpec tagless(std::uint64_t entries);
};

/** Instantiate the table described by @p spec. */
std::unique_ptr<TargetTable> makeTable(const TableSpec &spec,
                                       EntryCounterSpec counters = {});

} // namespace ibp

#endif // IBP_CORE_TABLE_SPEC_HH
