/**
 * @file
 * Fused sweep kernels: shared first-level history and key assembly
 * for a group of two-level predictors simulated in one pass.
 *
 * Every figure in the paper is a sweep whose columns differ in one
 * resource parameter (table size, associativity, the second path
 * length of a hybrid) but share the history specification: the same
 * sharing mode s, the same element kind, the same conditional-target
 * flag. Under simulateMany() each of those columns used to maintain
 * its own HistoryRegister and rebuild its own pattern key per
 * branch - identical work, repeated per column.
 *
 * A SweepKernel hoists that shared work out of the column loop:
 *
 *  - columns joining the kernel (IndirectPredictor::joinSweepKernel)
 *    are grouped by history *signature* (s, element kind,
 *    conditional flag); each group keeps ONE HistoryRegister at the
 *    deepest path length any member needs - HistoryBuffer::at(i) is
 *    depth-independent for i < p, so a deeper buffer serves every
 *    shorter path bit-identically;
 *  - within a group, columns with the same full PatternSpec share
 *    one key *variant* (one PatternBuilder plus a per-branch memo),
 *    so the 13 columns of a fig17 row that share path length p1
 *    build that component's key once per branch, not 13 times;
 *  - bit-select variants additionally share the *compressed targets*:
 *    the group caches bitsRange(target, a, bMax) per branch once,
 *    and each variant derives its own pattern by pushing those
 *    through its precomputed scatter masks (scatterBits consumes
 *    exactly popcount(mask) low bits, so the width-bMax compression
 *    serves every smaller b implicitly). Fold/shift-xor/full
 *    -precision variants fall back to their own buildKey() over the
 *    shared buffer - still memoized, still bit-identical.
 *  - columns (or hybrid components) whose *entire* TwoLevelConfig is
 *    equal go further: they are identical state machines fed the
 *    identical record stream, so their tables, histories and counters
 *    coincide forever. dedupe() designates the first such column the
 *    *primary* and turns the rest into replicas that mirror the
 *    primary's memoized per-record prediction and skip their own
 *    table work entirely. A fig17 row's twelve hybrids all share one
 *    p1 component this way, cutting the row's two-level simulations
 *    per record by almost half.
 *
 * The simulation loop drives the kernel: commit(pc, target) after
 * the per-record predictor loop performs the history pushes that
 * each bound predictor's update() suppressed, and bumps the version
 * that invalidates the memos. Because a solo predictor builds its
 * key from the *pre-push* history (predict() caches it, update()
 * reuses it before pushing), committing once after the loop is
 * observationally identical - the differential test in tests/sim
 * pins every SimResult counter bit-for-bit.
 *
 * Lifetime: bind at construction time, finalize() once, then drive.
 * Bound predictors hold pointers into the kernel, so the kernel must
 * outlive every use of its predictors (SuiteRunner scopes both to
 * one fused chunk). Not thread-safe; one kernel per traversal.
 */

#ifndef IBP_CORE_SWEEP_KERNEL_HH
#define IBP_CORE_SWEEP_KERNEL_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "core/history_register.hh"
#include "core/key.hh"
#include "core/pattern.hh"
#include "core/predictor.hh"

namespace ibp {

class SweepHistoryGroup;
class TwoLevelPredictor;

/** What makes two columns' first-level histories interchangeable. */
struct SweepGroupSignature
{
    /** History-pattern sharing s in [2, 32] (32 = global). */
    unsigned sharingBits = 32;
    /** HistoryElement::TargetAndAddress (two pushes per branch). */
    bool targetAndAddress = false;
    /** Taken conditional targets enter the history (section 3.3). */
    bool includeConditionalTargets = false;

    bool
    operator==(const SweepGroupSignature &other) const
    {
        return sharingBits == other.sharingBits &&
               targetAndAddress == other.targetAndAddress &&
               includeConditionalTargets ==
                   other.includeConditionalTargets;
    }
};

/**
 * One deduplicated key recipe within a group: every column whose
 * PatternSpec is identical shares this builder and its per-branch
 * memo. key() is valid only after SweepKernel::finalize().
 */
class SweepKeyVariant
{
  public:
    explicit SweepKeyVariant(const PatternSpec &spec)
        : _builder(spec)
    {
    }

    const PatternSpec &spec() const { return _builder.spec(); }

    /** The key this recipe produces for @p pc under the group's
     *  current history (memoized per (version, pc)). Defined after
     *  SweepHistoryGroup so the memo-hit path inlines into
     *  TwoLevelPredictor::currentKey - it runs twice per member per
     *  record (predict then update). */
    Key key(Addr pc, SweepHistoryGroup &group);

    /** Lane-engine key: the same value as key(), skipping the
     *  (version, pc) memo - the lane engine resolves each variant
     *  exactly once per record, so the memo could never hit there.
     *  Incremental variants reduce to the inline address mix. */
    Key
    laneKey(Addr pc, SweepHistoryGroup &group)
    {
        if (_incremental)
            return _builder.keyFromPattern(pc, _pattern);
        return key(pc, group);
    }

  private:
    friend class SweepKernel;
    friend class SweepHistoryGroup;

    /** The memo-miss slow path of key(): assemble and store. */
    Key rebuild(Addr pc, SweepHistoryGroup &group);

    /** Fold one pushed history element into the running pattern
     *  (incremental variants only; see _incremental). */
    void
    step(Addr element)
    {
        _pattern = _builder.advancePattern(_pattern, element);
    }

    PatternBuilder _builder;
    /** Derive the pattern from the group's shared compressed-target
     *  cache instead of re-compressing per variant (set by
     *  finalize(); requires flat bit-select with the group's a). */
    bool _fast = false;

    /**
     * Incremental mode (set by finalize()): the group's history is
     * global, so every branch reads the same pattern and each push
     * advances it by one uniform shift
     * (PatternBuilder::advancePattern). The group calls step() once
     * per pushed element and rebuild() collapses to mixing _pattern
     * with the branch address - no per-branch history walk at all.
     */
    bool _incremental = false;
    std::uint64_t _pattern = 0;

    std::uint64_t _memoVersion = 0;
    Addr _memoPc = 0;
    bool _memoValid = false;
    Key _memoKey;
};

/** One shared first-level history and its key variants. */
class SweepHistoryGroup
{
  public:
    explicit SweepHistoryGroup(const SweepGroupSignature &signature)
        : _signature(signature)
    {
    }

    const SweepGroupSignature &signature() const { return _signature; }
    std::uint64_t version() const { return _version; }

    /** The shared buffer branch @p pc consults (post-finalize). */
    const HistoryBuffer &
    buffer(Addr pc)
    {
        return _history->buffer(pc);
    }

    /**
     * Compressed targets of @p pc's history set at the group's
     * shared (a, bMax) bit-select, newest first, cacheDepth entries;
     * recomputed at most once per (version, set).
     */
    const std::uint64_t *compressedFor(Addr pc);

  private:
    friend class SweepKernel;
    friend class SweepKeyVariant;

    /** One resolved element enters @p pc's history: push it into the
     *  shared buffer and advance the incremental patterns. */
    void
    pushElement(Addr pc, Addr element)
    {
        _history->push(pc, element);
        for (SweepKeyVariant *variant : _incremental)
            variant->step(element);
    }

    SweepGroupSignature _signature;
    unsigned _maxDepth = 0;
    std::uint64_t _version = 1;
    std::unique_ptr<HistoryRegister> _history;
    std::vector<std::unique_ptr<SweepKeyVariant>> _variants;
    /** The subset of _variants in incremental mode (global-history
     *  groups only; filled by finalize()). */
    std::vector<SweepKeyVariant *> _incremental;

    // Shared compressed-target cache (see compressedFor).
    bool _cacheEnabled = false;
    unsigned _cacheLowBit = 0;
    unsigned _cacheBits = 0;
    unsigned _cacheDepth = 0;
    std::vector<std::uint64_t> _compressed;
    std::uint64_t _cacheVersion = 0;
    std::uint32_t _cacheSet = 0;
    bool _cacheValid = false;
};

class SweepKernel
{
  public:
    /** What bind() hands a joining predictor. */
    struct Binding
    {
        SweepHistoryGroup *group = nullptr;
        SweepKeyVariant *variant = nullptr;
    };

    SweepKernel() = default;
    SweepKernel(const SweepKernel &) = delete;
    SweepKernel &operator=(const SweepKernel &) = delete;

    /**
     * Offer the kernel to @p predictor
     * (IndirectPredictor::joinSweepKernel); families that cannot
     * share history simply decline and run unfused inside the same
     * traversal. Call before finalize().
     */
    bool tryJoin(IndirectPredictor &predictor);

    /**
     * Register one column's key recipe under its history signature.
     * Called by predictors from joinSweepKernel(). Returns the
     * shared group and the (deduplicated) variant.
     */
    Binding bind(const SweepGroupSignature &signature,
                 const PatternSpec &spec);

    /**
     * State deduplication: register @p predictor (already bound via
     * bind()) as a candidate for whole-predictor sharing. Returns the
     * earlier-registered predictor with an equal TwoLevelConfig - the
     * *primary* this one should mirror - or nullptr when @p predictor
     * becomes the primary for its configuration. Relies on the
     * traversal driving members in join order, so a primary always
     * predicts (and memoizes) before any of its replicas read.
     */
    TwoLevelPredictor *dedupe(TwoLevelPredictor &predictor);

    /**
     * Build the shared history registers and resolve the fast-path
     * eligibility of every variant. Must be called exactly once,
     * after all joins and before the traversal.
     */
    void finalize();

    /** An indirect branch resolved: push into every group. */
    void
    commit(Addr pc, Addr target)
    {
        for (const auto &group : _groups) {
            if (group->_signature.targetAndAddress)
                group->pushElement(pc, pc);
            group->pushElement(pc, target);
            ++group->_version;
        }
    }

    /** A conditional branch executed: push into 3.3 groups. */
    void
    observeConditional(Addr pc, bool taken, Addr target)
    {
        if (!taken)
            return;
        for (const auto &group : _groups) {
            if (!group->_signature.includeConditionalTargets)
                continue;
            if (group->_signature.targetAndAddress)
                group->pushElement(pc, pc);
            group->pushElement(pc, target);
            ++group->_version;
        }
    }

    /** True when any group folds taken conditional targets into its
     *  shared history (section 3.3 columns): the traversal must then
     *  feed conditional records to observeConditional() even if no
     *  individual predictor consumes them directly. */
    bool
    hasConditionalGroups() const
    {
        for (const auto &group : _groups) {
            if (group->_signature.includeConditionalTargets)
                return true;
        }
        return false;
    }

    /** Top-level predictors that joined / declined (telemetry). */
    unsigned joinedPredictors() const { return _joined; }
    unsigned declinedPredictors() const { return _declined; }

    /** Two-level columns turned into dedup replicas (telemetry). */
    unsigned dedupedPredictors() const { return _deduped; }

    std::size_t groupCount() const { return _groups.size(); }

    std::size_t
    variantCount() const
    {
        std::size_t count = 0;
        for (const auto &group : _groups)
            count += group->_variants.size();
        return count;
    }

  private:
    std::vector<std::unique_ptr<SweepHistoryGroup>> _groups;
    std::vector<TwoLevelPredictor *> _primaries;
    bool _finalized = false;
    unsigned _joined = 0;
    unsigned _declined = 0;
    unsigned _deduped = 0;
};

inline Key
SweepKeyVariant::key(Addr pc, SweepHistoryGroup &group)
{
    if (_memoValid && _memoVersion == group._version && _memoPc == pc)
        return _memoKey;
    return rebuild(pc, group);
}

} // namespace ibp

#endif // IBP_CORE_SWEEP_KERNEL_HH
