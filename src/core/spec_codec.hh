/**
 * @file
 * Canonical serialisation and content hashing of predictor specs.
 *
 * Every predictor configuration struct (TableSpec, TwoLevelConfig,
 * HybridConfig, SharedHybridConfig, CascadedConfig, IttageConfig,
 * plus the BTB's table+hysteresis pair) gets ONE versioned, stable
 * byte encoding and an FNV-1a 64-bit hash over it. The hash is the
 * content address the result store keys simulation cells on
 * (src/sim/result_store.hh), so its contract is strict:
 *
 *  - equal configurations (operator==) encode to equal bytes and
 *    hash equal - and, modulo 64-bit collisions, ONLY equal
 *    configurations hash equal (every field is encoded, none is
 *    derived or dropped);
 *  - the encoding never depends on platform, locale, or field
 *    ordering accidents: each field is appended as a fixed-width
 *    little-endian word in declaration order, vectors as a length
 *    word followed by their elements, nested specs with their own
 *    family tag so component boundaries cannot alias;
 *  - any change to the encoding (field added, enum reordered, rule
 *    changed) MUST bump kSpecCodecVersion, which is folded into
 *    every hash: old store entries then miss cleanly instead of
 *    being served against a differently-shaped spec. The pinned
 *    golden hashes in tests/core/spec_codec_test.cc exist to make
 *    an accidental encoding change fail loudly.
 *
 * This codec also replaces the ad-hoc per-bench spec plumbing: the
 * sweep-column helpers in src/sim/spec_columns.hh derive both the
 * factory and the content hash from one config value.
 */

#ifndef IBP_CORE_SPEC_CODEC_HH
#define IBP_CORE_SPEC_CODEC_HH

#include <cstdint>
#include <string>

#include "core/cascaded.hh"
#include "core/hybrid.hh"
#include "core/ittage.hh"
#include "core/shared_hybrid.hh"
#include "core/table_spec.hh"
#include "core/two_level.hh"

namespace ibp {

/**
 * Version of the canonical byte encoding. Bump on ANY change to the
 * encoded field set, field widths, enum values, or family tags; the
 * version is hashed into every spec hash, so a bump conservatively
 * invalidates all content-addressed result-store entries.
 */
constexpr std::uint32_t kSpecCodecVersion = 1;

/** Append the canonical encoding of a spec to @p out. */
void encodeSpec(const TableSpec &spec, std::string &out);
void encodeSpec(const PatternSpec &spec, std::string &out);
void encodeSpec(const TwoLevelConfig &config, std::string &out);
void encodeSpec(const HybridConfig &config, std::string &out);
void encodeSpec(const SharedHybridConfig &config, std::string &out);
void encodeSpec(const CascadedConfig &config, std::string &out);
void encodeSpec(const IttageConfig &config, std::string &out);

/** Append one canonical little-endian 64-bit word. */
void appendSpecWord(std::string &out, std::uint64_t word);

/** FNV-1a 64 over @p bytes (standard offset basis and prime). */
std::uint64_t specBytesHash(const std::string &bytes);

/**
 * The complete canonical byte string of one spec: a codec-version
 * word followed by the spec's encoding. This is what specHash()
 * hashes; exposed so tests can assert stability directly.
 */
template <typename Spec>
std::string
canonicalSpecBytes(const Spec &spec)
{
    std::string out;
    appendSpecWord(out, kSpecCodecVersion);
    encodeSpec(spec, out);
    return out;
}

/** Content hash of one spec (codec version folded in). */
template <typename Spec>
std::uint64_t
specHash(const Spec &spec)
{
    return specBytesHash(canonicalSpecBytes(spec));
}

/**
 * Content hash of a BTB configuration. The BTB has no config struct
 * of its own - it is a table organisation plus the 2-bit-counter
 * flag - so the codec hashes that pair under its own family tag.
 */
std::uint64_t btbSpecHash(const TableSpec &table, bool hysteresis);

/** 16-digit lowercase hex rendering of a spec hash. */
std::string specHashHex(std::uint64_t hash);

} // namespace ibp

#endif // IBP_CORE_SPEC_CODEC_HH
