/**
 * @file
 * The Target Cache of Chang, Hao & Patt [CHP97] - the paper's main
 * published competitor (discussed in section 7).
 *
 * Unlike this paper's path-based predictors, the Target Cache
 * indexes its (typically tagless) table with a *pattern history of
 * conditional-branch outcomes*: a global shift register of the last
 * k taken/not-taken bits, xored with the branch address in the
 * gshare style. The paper reports that for gcc a gshare(9) 512-entry
 * Pattern History Tagless Target Cache halves the BTB-2bc
 * misprediction rate to 30.9%, while its own best 512-entry hybrid
 * reaches 26.4%.
 *
 * Simulating it requires traces that carry conditional branches
 * (GeneratorOptions::emitConditionals).
 */

#ifndef IBP_CORE_TARGET_CACHE_HH
#define IBP_CORE_TARGET_CACHE_HH

#include <memory>

#include "core/predictor.hh"
#include "core/table_spec.hh"

namespace ibp {

/** Configuration of a Target Cache. */
struct TargetCacheConfig
{
    /** Conditional-history length k (the paper compares gshare(9)). */
    unsigned historyBits = 9;

    /** Second-level table; [CHP97] uses a tagless 512-entry table. */
    TableSpec table = TableSpec::tagless(512);

    /** Apply the two-bit-counter update rule to targets. */
    bool hysteresis = true;

    std::string describe() const;
};

class TargetCachePredictor : public IndirectPredictor
{
  public:
    explicit TargetCachePredictor(const TargetCacheConfig &config);

    Prediction predict(Addr pc) override;
    void update(Addr pc, Addr actual) override;
    void observeConditional(Addr pc, bool taken, Addr target) override;
    bool consumesConditionals() const override { return true; }
    void reset() override;
    std::string name() const override;

    std::uint64_t tableCapacity() const override
    {
        return _table->capacity();
    }
    std::uint64_t tableOccupancy() const override
    {
        return _table->occupancy();
    }

    /** Current conditional-history register (for tests). */
    std::uint64_t historyBits() const { return _history; }

  private:
    Key keyFor(Addr pc) const;

    TargetCacheConfig _config;
    std::unique_ptr<TargetTable> _table;
    std::uint64_t _history = 0;
};

} // namespace ibp

#endif // IBP_CORE_TARGET_CACHE_HH
