#include "core/set_assoc_table.hh"

#include <algorithm>

namespace ibp {

SetAssocTable::SetAssocTable(std::uint64_t entries, unsigned ways,
                             EntryCounterSpec counters)
    : _ways(ways), _counters(counters)
{
    IBP_ASSERT(ways >= 1, "associativity must be >= 1");
    IBP_ASSERT(entries >= ways && entries % ways == 0,
               "entries %llu not a multiple of ways %u",
               static_cast<unsigned long long>(entries), ways);
    _sets = entries / ways;
    IBP_ASSERT(isPowerOfTwo(_sets), "set count %llu not a power of two",
               static_cast<unsigned long long>(_sets));
    _indexBits = floorLog2(_sets);
    _storage.resize(entries);
    _digests.assign(entries, 0);
}

std::uint64_t
SetAssocTable::indexOf(const Key &key) const
{
    return key.lo & lowMask(_indexBits);
}

std::uint64_t
SetAssocTable::tagOf(const Key &key) const
{
    // Everything above the index bits participates in the tag. The
    // 128-bit hashed keys of unconstrained predictors fold their high
    // half in so full-precision patterns can also run on small tables.
    return (key.lo >> _indexBits) ^ (key.hi * 0x9e3779b97f4a7c15ULL);
}

std::uint8_t
SetAssocTable::digestOf(std::uint64_t tag)
{
    // Seven well-mixed tag bits; the high bit distinguishes every
    // allocated way from the never-allocated zero digest.
    return static_cast<std::uint8_t>(
        0x80u | (mix64(tag) >> 57));
}

const TableEntry *
SetAssocTable::probe(const Key &key) const
{
    const std::uint64_t set = indexOf(key);
    const std::uint64_t tag = tagOf(key);
    const std::uint8_t digest = digestOf(tag);
    const Way *base = &_storage[set * _ways];
    const std::uint8_t *digests = &_digests[set * _ways];
    for (unsigned w = 0; w < _ways; ++w) {
        // Digest-first: a mismatching way is rejected on one byte
        // without loading its Way record at all.
        if (digests[w] != digest)
            continue;
        const Way &way = base[w];
        if (way.entry.valid && way.tag == tag)
            return &way.entry;
    }
    return nullptr;
}

TableEntry &
SetAssocTable::access(const Key &key, bool &replaced)
{
    const std::uint64_t set = indexOf(key);
    const std::uint64_t tag = tagOf(key);
    const std::uint8_t digest = digestOf(tag);
    Way *base = &_storage[set * _ways];
    std::uint8_t *digests = &_digests[set * _ways];
    ++_clock;

    Way *victim = &base[0];
    unsigned victim_way = 0;
    for (unsigned w = 0; w < _ways; ++w) {
        Way &way = base[w];
        if (digests[w] == digest && way.entry.valid &&
            way.tag == tag) {
            way.lastUse = _clock;
            replaced = false;
            return way.entry;
        }
        // Prefer an invalid way; otherwise the least recently used.
        if (!way.entry.valid) {
            if (victim->entry.valid || way.lastUse < victim->lastUse) {
                victim = &way;
                victim_way = w;
            }
        } else if (victim->entry.valid &&
                   way.lastUse < victim->lastUse) {
            victim = &way;
            victim_way = w;
        }
    }

    victim->tag = tag;
    victim->lastUse = _clock;
    victim->entry.resetFor(_counters.confidenceBits,
                           _counters.chosenBits);
    digests[victim_way] = digest;
    replaced = true;
    return victim->entry;
}

std::uint64_t
SetAssocTable::occupancy() const
{
    std::uint64_t count = 0;
    for (const auto &way : _storage)
        count += way.entry.valid ? 1 : 0;
    return count;
}

void
SetAssocTable::reset()
{
    for (auto &way : _storage) {
        way.tag = 0;
        way.lastUse = 0;
        way.entry = TableEntry{};
    }
    std::fill(_digests.begin(), _digests.end(), 0);
    _clock = 0;
}

std::string
SetAssocTable::name() const
{
    return "assoc" + std::to_string(_ways);
}

} // namespace ibp
