#include "core/set_assoc_table.hh"

#include <algorithm>

namespace ibp {

SetAssocTable::SetAssocTable(std::uint64_t entries, unsigned ways,
                             EntryCounterSpec counters)
    : _ways(ways), _counters(counters)
{
    IBP_ASSERT(ways >= 1, "associativity must be >= 1");
    IBP_ASSERT(entries >= ways && entries % ways == 0,
               "entries %llu not a multiple of ways %u",
               static_cast<unsigned long long>(entries), ways);
    _sets = entries / ways;
    IBP_ASSERT(isPowerOfTwo(_sets), "set count %llu not a power of two",
               static_cast<unsigned long long>(_sets));
    _indexBits = floorLog2(_sets);
    _storage.resize(entries);
    _digests.assign(entries, 0);
}

std::uint64_t
SetAssocTable::occupancy() const
{
    std::uint64_t count = 0;
    for (const auto &way : _storage)
        count += way.entry.valid ? 1 : 0;
    return count;
}

void
SetAssocTable::reset()
{
    for (auto &way : _storage) {
        way.tag = 0;
        way.lastUse = 0;
        way.entry = TableEntry{};
    }
    std::fill(_digests.begin(), _digests.end(), 0);
    _clock = 0;
    _memoArmed = false;
}

std::string
SetAssocTable::name() const
{
    return "assoc" + std::to_string(_ways);
}

} // namespace ibp
