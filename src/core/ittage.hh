/**
 * @file
 * An ITTAGE-style indirect target predictor (Seznec & Michaud's
 * "indirect target TAGE"), the modern descendant of this paper's
 * two-level design. Provided as an extension so the reproduction can
 * show a then-vs-now comparison (bench/ext_related_work).
 *
 * Structure:
 *  - a base predictor (a tagged BTB) always available;
 *  - N tagged components indexed by geometrically growing slices of
 *    the global target-path history;
 *  - prediction comes from the hitting component with the longest
 *    history; entries carry a confidence counter and a useful bit;
 *  - on a misprediction, a new entry is allocated in one longer
 *    component whose victim is not useful.
 *
 * The history is the same target-address path the paper uses (one
 * bit per target here, compressed from bit 2), not the
 * conditional-outcome history of the original ITTAGE - which is
 * precisely the paper's insight carried forward.
 */

#ifndef IBP_CORE_ITTAGE_HH
#define IBP_CORE_ITTAGE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/predictor.hh"
#include "util/bits.hh"
#include "util/rng.hh"
#include "util/sat_counter.hh"

namespace ibp {

/** Configuration of the ITTAGE-style predictor. */
struct IttageConfig
{
    /** Entries in the tagless-indexed base table. */
    std::uint64_t baseEntries = 512;

    /** Entries per tagged component. */
    std::uint64_t componentEntries = 512;

    /** Geometric history lengths, in bits (2 bits per target). */
    std::vector<unsigned> historyLengths = {4, 8, 16, 32};

    /** Tag width of the tagged components. */
    unsigned tagBits = 10;

    /** Field-wise equality (content hashing keys on it). */
    bool operator==(const IttageConfig &other) const = default;

    std::string describe() const;
};

class IttagePredictor : public IndirectPredictor
{
  public:
    explicit IttagePredictor(const IttageConfig &config);

    Prediction predict(Addr pc) override;
    void update(Addr pc, Addr actual) override;
    void reset() override;
    std::string name() const override;

    std::uint64_t tableCapacity() const override;
    std::uint64_t tableOccupancy() const override;

  private:
    struct TaggedEntry
    {
        bool valid = false;
        std::uint32_t tag = 0;
        Addr target = 0;
        SatCounter confidence{2};
        bool useful = false;
    };

    struct BaseEntry
    {
        bool valid = false;
        Addr target = 0;
        HysteresisBit hysteresis;
    };

    struct Lookup
    {
        int component = -1; ///< -1 = base table
        Addr target = 0;
        bool valid = false;
        std::uint64_t index = 0;
        std::uint32_t tag = 0;
    };

    std::uint64_t foldedHistory(unsigned length, unsigned bits) const;
    std::uint64_t componentIndex(unsigned component, Addr pc) const;
    std::uint32_t componentTag(unsigned component, Addr pc) const;
    Lookup lookup(Addr pc);

    IttageConfig _config;
    std::vector<BaseEntry> _base;
    std::vector<std::vector<TaggedEntry>> _components;
    /** Global path history, one compressed bit per target. */
    std::uint64_t _pathHistory = 0;
    Rng _allocRng;
};

} // namespace ibp

#endif // IBP_CORE_ITTAGE_HH
