/**
 * @file
 * First-level history: recent indirect-branch targets.
 *
 * The paper's first-level parameter s (section 3.2.1) controls
 * history-pattern sharing: all branches whose address bits s..31 are
 * equal share one history buffer. s = 2 gives per-branch histories
 * (instructions are word-aligned), larger s gives per-set histories,
 * and s >= 31 gives a single global history. We accept s in [2, 32]
 * and treat s >= 32 as exactly global (the paper's s = 31; for
 * executables below 2^31 bytes these are identical).
 *
 * Buffers store full 32-bit target addresses; precision reduction
 * happens later in the pattern builder, so one register serves both
 * the unconstrained (section 3) and limited-precision (section 4)
 * predictors.
 */

#ifndef IBP_CORE_HISTORY_REGISTER_HH
#define IBP_CORE_HISTORY_REGISTER_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/flat_table.hh"
#include "core/table_spec.hh"
#include "util/bits.hh"
#include "util/logging.hh"

namespace ibp {

/**
 * A fixed-depth circular buffer of recent targets for one history
 * set. Index 0 is the most recent target; cold slots read as zero.
 */
class HistoryBuffer
{
  public:
    explicit HistoryBuffer(unsigned depth) : _targets(depth, 0) {}

    unsigned depth() const
    {
        return static_cast<unsigned>(_targets.size());
    }

    /** The i-th most recent target (0 = newest). */
    Addr
    at(unsigned i) const
    {
        IBP_ASSERT(i < depth(), "history index %u depth %u", i, depth());
        // _head and i are both < depth, so one conditional subtract
        // replaces the modulo (depth is rarely a power of two, so
        // the division was real work in the per-branch key build).
        unsigned index = _head + i;
        if (index >= depth())
            index -= depth();
        return _targets[index];
    }

    /** Shift in a new most-recent target. */
    void
    push(Addr target)
    {
        if (_targets.empty())
            return;
        _head = (_head == 0 ? depth() : _head) - 1;
        _targets[_head] = target;
    }

    void
    clear()
    {
        std::fill(_targets.begin(), _targets.end(), 0);
        _head = 0;
    }

  private:
    std::vector<Addr> _targets;
    unsigned _head = 0;
};

/**
 * The per-set history register bank: maps a branch PC to its history
 * buffer according to the sharing parameter s.
 */
class HistoryRegister
{
  public:
    /**
     * @param depth       number of targets retained (the maximum path
     *                    length the owner will ask for); may be 0.
     * @param sharingBits the paper's s parameter, in [2, 32].
     */
    HistoryRegister(unsigned depth, unsigned sharingBits = 32)
        : _depth(depth), _sharingBits(sharingBits),
          _flat(tableImplementation() == TableImpl::Flat),
          _global(depth)
    {
        IBP_ASSERT(sharingBits >= 2 && sharingBits <= 32,
                   "history sharing s=%u outside [2, 32]", sharingBits);
    }

    unsigned depth() const { return _depth; }
    unsigned sharingBits() const { return _sharingBits; }
    bool isGlobal() const { return _sharingBits >= 32; }

    /** History set id of a branch (bits s..31 of its PC). */
    std::uint32_t
    setId(Addr pc) const
    {
        return isGlobal() ? 0 : (pc >> _sharingBits);
    }

    /** The buffer consulted (and updated) by branch @p pc. */
    const HistoryBuffer &
    buffer(Addr pc)
    {
        return mutableBuffer(pc);
    }

    /** Record the resolved target of branch @p pc. */
    void
    push(Addr pc, Addr target)
    {
        mutableBuffer(pc).push(target);
    }

    /** Forget all history (all sets). */
    void
    reset()
    {
        _global.clear();
        _sets.clear();
        _buffers.clear();
        _refSets.clear();
        _memoValid = false;
    }

    /** Number of distinct history sets touched so far. */
    std::size_t
    touchedSets() const
    {
        return isGlobal() ? 1 : (_flat ? _sets.size() : _refSets.size());
    }

  private:
    HistoryBuffer &
    mutableBuffer(Addr pc)
    {
        if (isGlobal())
            return _global;
        if (!_flat) {
            // The retained node-based original (the differential
            // oracle): one unordered_map probe per consultation.
            auto [it, inserted] =
                _refSets.try_emplace(setId(pc), _depth);
            return it->second;
        }
        // Flat path: the FlatMap holds pool indices (trivially
        // copyable), the buffers themselves live in _buffers. A
        // branch consults its set twice back to back (key build in
        // predict(), push in update()), so a one-entry memo turns
        // the second probe into a compare. Pool indices are stable
        // (buffers are only appended), so the memo survives FlatMap
        // growth.
        const std::uint32_t set = setId(pc);
        if (_memoValid && _memoSet == set)
            return _buffers[_memoIndex];
        bool inserted = false;
        std::uint32_t &slot = _sets.findOrInsert(set, inserted);
        if (inserted) {
            slot = static_cast<std::uint32_t>(_buffers.size());
            _buffers.emplace_back(_depth);
        }
        _memoValid = true;
        _memoSet = set;
        _memoIndex = slot;
        return _buffers[_memoIndex];
    }

    unsigned _depth;
    unsigned _sharingBits;
    bool _flat;
    bool _memoValid = false;
    std::uint32_t _memoSet = 0;
    std::uint32_t _memoIndex = 0;
    HistoryBuffer _global;
    FlatMap<std::uint32_t, std::uint32_t> _sets;
    std::vector<HistoryBuffer> _buffers;
    std::unordered_map<std::uint32_t, HistoryBuffer> _refSets;
};

} // namespace ibp

#endif // IBP_CORE_HISTORY_REGISTER_HH
