/**
 * @file
 * Reference (node-based) table implementations.
 *
 * These are the pre-flat-table implementations of the bounded and
 * unbounded target tables, kept verbatim as the behavioural oracle
 * for the FlatMap-based ports: makeTable() instantiates them instead
 * of the flat classes when the reference toggle is on (compile with
 * -DIBP_REFERENCE_TABLES, set the IBP_REFERENCE_TABLES environment
 * variable, or call setTableImplementation() — see
 * core/table_spec.hh), and the differential tests in
 * tests/sim/flat_reference_diff_test.cc pin every SimResult counter
 * bit-identical between the two builds.
 *
 * They deliberately report the same name() strings as their flat
 * twins so predictor describe() output — and therefore SimResult,
 * artifacts and baselines — is independent of the toggle.
 */

#ifndef IBP_CORE_REFERENCE_TABLES_HH
#define IBP_CORE_REFERENCE_TABLES_HH

#include <list>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/table.hh"
#include "util/logging.hh"

namespace ibp {

/** Node-based unlimited fully-associative table (section 3). */
class ReferenceUnconstrainedTable : public TargetTable
{
  public:
    explicit ReferenceUnconstrainedTable(EntryCounterSpec counters = {})
        : _counters(counters)
    {
    }

    const TableEntry *
    probe(const Key &key) const override
    {
        const auto it = _entries.find(key);
        return it == _entries.end() ? nullptr : &it->second;
    }

    TableEntry &
    access(const Key &key, bool &replaced) override
    {
        auto [it, inserted] = _entries.try_emplace(key);
        if (inserted) {
            it->second.resetFor(_counters.confidenceBits,
                                _counters.chosenBits);
        }
        replaced = inserted;
        return it->second;
    }

    std::uint64_t occupancy() const override { return _entries.size(); }
    std::uint64_t capacity() const override { return 0; }
    void reset() override { _entries.clear(); }
    std::string name() const override { return "unconstrained"; }

  private:
    EntryCounterSpec _counters;
    std::unordered_map<Key, TableEntry, KeyHash> _entries;
};

/** std::list + iterator-map LRU table (section 5.1). */
class ReferenceFullyAssocTable : public TargetTable
{
  public:
    ReferenceFullyAssocTable(std::uint64_t entries,
                             EntryCounterSpec counters = {})
        : _capacity(entries), _counters(counters)
    {
        IBP_ASSERT(entries >= 1, "fully-assoc table needs >= 1 entry");
    }

    const TableEntry *
    probe(const Key &key) const override
    {
        const auto it = _index.find(key);
        return it == _index.end() ? nullptr : &it->second->second;
    }

    TableEntry &
    access(const Key &key, bool &replaced) override
    {
        const auto it = _index.find(key);
        if (it != _index.end()) {
            // Touch: move to the MRU (front) position.
            _lru.splice(_lru.begin(), _lru, it->second);
            replaced = false;
            return it->second->second;
        }
        if (_lru.size() >= _capacity) {
            // Evict the LRU (back) entry.
            _index.erase(_lru.back().first);
            _lru.pop_back();
        }
        _lru.emplace_front(key, TableEntry{});
        _lru.front().second.resetFor(_counters.confidenceBits,
                                     _counters.chosenBits);
        _index[key] = _lru.begin();
        replaced = true;
        return _lru.front().second;
    }

    std::uint64_t occupancy() const override { return _lru.size(); }
    std::uint64_t capacity() const override { return _capacity; }

    void
    reset() override
    {
        _lru.clear();
        _index.clear();
    }

    std::string name() const override { return "fullassoc"; }

  private:
    using LruList = std::list<std::pair<Key, TableEntry>>;

    std::uint64_t _capacity;
    EntryCounterSpec _counters;
    LruList _lru;
    std::unordered_map<Key, LruList::iterator, KeyHash> _index;
};

/** Set-associative table without the tag-byte fast path (5.2). */
class ReferenceSetAssocTable : public TargetTable
{
  public:
    ReferenceSetAssocTable(std::uint64_t entries, unsigned ways,
                           EntryCounterSpec counters = {})
        : _ways(ways), _counters(counters)
    {
        IBP_ASSERT(ways >= 1, "associativity must be >= 1");
        IBP_ASSERT(entries >= ways && entries % ways == 0,
                   "entries %llu not a multiple of ways %u",
                   static_cast<unsigned long long>(entries), ways);
        _sets = entries / ways;
        IBP_ASSERT(isPowerOfTwo(_sets),
                   "set count %llu not a power of two",
                   static_cast<unsigned long long>(_sets));
        _indexBits = floorLog2(_sets);
        _storage.resize(entries);
    }

    std::uint64_t
    indexOf(const Key &key) const
    {
        return key.lo & lowMask(_indexBits);
    }

    std::uint64_t
    tagOf(const Key &key) const
    {
        return (key.lo >> _indexBits) ^
               (key.hi * 0x9e3779b97f4a7c15ULL);
    }

    const TableEntry *
    probe(const Key &key) const override
    {
        const std::uint64_t set = indexOf(key);
        const std::uint64_t tag = tagOf(key);
        const Way *base = &_storage[set * _ways];
        for (unsigned w = 0; w < _ways; ++w) {
            const Way &way = base[w];
            if (way.entry.valid && way.tag == tag)
                return &way.entry;
        }
        return nullptr;
    }

    TableEntry &
    access(const Key &key, bool &replaced) override
    {
        const std::uint64_t set = indexOf(key);
        const std::uint64_t tag = tagOf(key);
        Way *base = &_storage[set * _ways];
        ++_clock;

        Way *victim = &base[0];
        for (unsigned w = 0; w < _ways; ++w) {
            Way &way = base[w];
            if (way.entry.valid && way.tag == tag) {
                way.lastUse = _clock;
                replaced = false;
                return way.entry;
            }
            // Prefer an invalid way; otherwise the least recently
            // used.
            if (!way.entry.valid) {
                if (victim->entry.valid ||
                    way.lastUse < victim->lastUse) {
                    victim = &way;
                }
            } else if (victim->entry.valid &&
                       way.lastUse < victim->lastUse) {
                victim = &way;
            }
        }

        victim->tag = tag;
        victim->lastUse = _clock;
        victim->entry.resetFor(_counters.confidenceBits,
                               _counters.chosenBits);
        replaced = true;
        return victim->entry;
    }

    std::uint64_t
    occupancy() const override
    {
        std::uint64_t count = 0;
        for (const auto &way : _storage)
            count += way.entry.valid ? 1 : 0;
        return count;
    }

    std::uint64_t capacity() const override { return _ways * _sets; }

    void
    reset() override
    {
        for (auto &way : _storage) {
            way.tag = 0;
            way.lastUse = 0;
            way.entry = TableEntry{};
        }
        _clock = 0;
    }

    std::string
    name() const override
    {
        return "assoc" + std::to_string(_ways);
    }

  private:
    struct Way
    {
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0;
        TableEntry entry;
    };

    unsigned _ways;
    std::uint64_t _sets;
    unsigned _indexBits;
    EntryCounterSpec _counters;
    std::vector<Way> _storage; // _sets * _ways, set-major
    std::uint64_t _clock = 0;
};

} // namespace ibp

#endif // IBP_CORE_REFERENCE_TABLES_HH
