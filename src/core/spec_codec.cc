#include "core/spec_codec.hh"

#include <cstdio>

namespace ibp {

namespace {

/**
 * Family tags keep nested encodings unambiguous: a HybridConfig
 * containing one component can never encode to the same bytes as
 * that component alone. Tag values are part of the versioned format
 * - never renumber, only append (and bump kSpecCodecVersion).
 */
enum SpecFamily : std::uint64_t
{
    kFamilyTable = 1,
    kFamilyPattern = 2,
    kFamilyTwoLevel = 3,
    kFamilyHybrid = 4,
    kFamilySharedHybrid = 5,
    kFamilyCascaded = 6,
    kFamilyIttage = 7,
    kFamilyBtb = 8,
};

} // namespace

void
appendSpecWord(std::string &out, std::uint64_t word)
{
    for (int byte = 0; byte < 8; ++byte) {
        out.push_back(static_cast<char>(word & 0xff));
        word >>= 8;
    }
}

std::uint64_t
specBytesHash(const std::string &bytes)
{
    // Byte-wise FNV-1a 64 with the standard offset basis, matching
    // the trace-cache key hash so both content addresses share one
    // well-understood function.
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    constexpr std::uint64_t prime = 0x100000001b3ULL;
    for (const char c : bytes) {
        hash ^= static_cast<unsigned char>(c);
        hash *= prime;
    }
    return hash;
}

void
encodeSpec(const TableSpec &spec, std::string &out)
{
    appendSpecWord(out, kFamilyTable);
    appendSpecWord(out, static_cast<std::uint64_t>(spec.kind));
    appendSpecWord(out, spec.entries);
    appendSpecWord(out, spec.ways);
}

void
encodeSpec(const PatternSpec &spec, std::string &out)
{
    // Every declared field, verbatim - resolvedBitsPerTarget() is
    // derived and must NOT be substituted for bitsPerTarget, or a
    // config saying "auto" would alias one saying the resolved value
    // while future auto-rule changes silently served stale cells.
    appendSpecWord(out, kFamilyPattern);
    appendSpecWord(out, spec.pathLength);
    appendSpecWord(out, static_cast<std::uint64_t>(spec.precision));
    appendSpecWord(out, spec.bitsPerTarget);
    appendSpecWord(out, spec.lowBit);
    appendSpecWord(out, static_cast<std::uint64_t>(spec.compressor));
    appendSpecWord(out, static_cast<std::uint64_t>(spec.interleave));
    appendSpecWord(out, static_cast<std::uint64_t>(spec.keyMix));
    appendSpecWord(out, spec.tableSharing);
    appendSpecWord(out, spec.includeBranchAddress ? 1 : 0);
}

void
encodeSpec(const TwoLevelConfig &config, std::string &out)
{
    appendSpecWord(out, kFamilyTwoLevel);
    encodeSpec(config.pattern, out);
    appendSpecWord(out, config.historySharing);
    encodeSpec(config.table, out);
    appendSpecWord(out, config.hysteresis ? 1 : 0);
    appendSpecWord(out, config.includeConditionalTargets ? 1 : 0);
    appendSpecWord(out,
                   static_cast<std::uint64_t>(config.historyElement));
    appendSpecWord(out, config.confidenceBits);
}

void
encodeSpec(const HybridConfig &config, std::string &out)
{
    appendSpecWord(out, kFamilyHybrid);
    appendSpecWord(out, config.components.size());
    for (const TwoLevelConfig &component : config.components)
        encodeSpec(component, out);
    appendSpecWord(out, static_cast<std::uint64_t>(config.meta));
    appendSpecWord(out, config.confidenceBits);
    appendSpecWord(out, config.selectorEntries);
}

void
encodeSpec(const SharedHybridConfig &config, std::string &out)
{
    appendSpecWord(out, kFamilySharedHybrid);
    appendSpecWord(out, config.pathLengths.size());
    for (const unsigned p : config.pathLengths)
        appendSpecWord(out, p);
    appendSpecWord(out, config.entries);
    appendSpecWord(out, config.ways);
    appendSpecWord(out, config.confidenceBits);
    appendSpecWord(out, config.chosenBits);
    appendSpecWord(out, config.hysteresis ? 1 : 0);
}

void
encodeSpec(const CascadedConfig &config, std::string &out)
{
    appendSpecWord(out, kFamilyCascaded);
    appendSpecWord(out, config.stages.size());
    for (const CascadeStage &stage : config.stages) {
        appendSpecWord(out, stage.pathLength);
        encodeSpec(stage.table, out);
    }
    appendSpecWord(out, config.filterAllocation ? 1 : 0);
    appendSpecWord(out, config.hysteresis ? 1 : 0);
}

void
encodeSpec(const IttageConfig &config, std::string &out)
{
    appendSpecWord(out, kFamilyIttage);
    appendSpecWord(out, config.baseEntries);
    appendSpecWord(out, config.componentEntries);
    appendSpecWord(out, config.historyLengths.size());
    for (const unsigned length : config.historyLengths)
        appendSpecWord(out, length);
    appendSpecWord(out, config.tagBits);
}

std::uint64_t
btbSpecHash(const TableSpec &table, bool hysteresis)
{
    std::string out;
    appendSpecWord(out, kSpecCodecVersion);
    appendSpecWord(out, kFamilyBtb);
    encodeSpec(table, out);
    appendSpecWord(out, hysteresis ? 1 : 0);
    return specBytesHash(out);
}

std::string
specHashHex(std::uint64_t hash)
{
    char buffer[17];
    std::snprintf(buffer, sizeof(buffer), "%016llx",
                  static_cast<unsigned long long>(hash));
    return buffer;
}

} // namespace ibp
