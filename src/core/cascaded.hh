/**
 * @file
 * Cascaded (PPM-style) indirect branch predictor.
 *
 * Related work in the paper (section 7) notes that a PPM predictor
 * [CCM96] "predicts for the longest pattern for which a prediction
 * is available, choosing progressively shorter path lengths until a
 * prediction is found", and that a hybrid with different path-length
 * components can mimic it. This class implements the idea directly
 * (it is also the design Driesen & Hoelzle developed further in
 * their later cascaded-predictor work):
 *
 *  - stages with increasing path lengths share the total budget;
 *  - prediction comes from the longest stage that hits;
 *  - allocation is *filtered*: a longer stage only allocates when
 *    the shorter stages mispredicted, so easy branches do not
 *    pollute the expensive long-history tables.
 */

#ifndef IBP_CORE_CASCADED_HH
#define IBP_CORE_CASCADED_HH

#include <memory>
#include <vector>

#include "core/history_register.hh"
#include "core/pattern.hh"
#include "core/predictor.hh"
#include "core/table_spec.hh"

namespace ibp {

/** Configuration of one cascade stage. */
struct CascadeStage
{
    unsigned pathLength = 0;
    TableSpec table;

    bool operator==(const CascadeStage &other) const = default;
};

/** Configuration of the whole cascade. */
struct CascadedConfig
{
    /** Stages ordered by increasing path length. */
    std::vector<CascadeStage> stages;

    /** Allocate in longer stages only after shorter ones missed. */
    bool filterAllocation = true;

    bool hysteresis = true;

    /** Field-wise equality (content hashing keys on it). */
    bool operator==(const CascadedConfig &other) const = default;

    void validate() const;
    std::string describe() const;

    /** A classic 3-stage cascade splitting @p totalEntries. */
    static CascadedConfig classic(std::uint64_t totalEntries);
};

class CascadedPredictor : public IndirectPredictor
{
  public:
    explicit CascadedPredictor(const CascadedConfig &config);

    Prediction predict(Addr pc) override;
    void update(Addr pc, Addr actual) override;
    void reset() override;
    std::string name() const override;

    std::uint64_t tableCapacity() const override;
    std::uint64_t tableOccupancy() const override;

    /** Stage that supplied the last prediction (-1 = none). */
    int lastStage() const { return _lastStage; }

  private:
    struct Stage
    {
        PatternBuilder builder;
        std::unique_ptr<TargetTable> table;
    };

    CascadedConfig _config;
    HistoryRegister _history;
    std::vector<Stage> _stages;
    int _lastStage = -1;
};

} // namespace ibp

#endif // IBP_CORE_CASCADED_HH
