/**
 * @file
 * Unlimited fully-associative table (section 3 of the paper).
 *
 * Models ideal hardware: every distinct key gets its own entry and
 * nothing is ever evicted. Used to measure the intrinsic
 * predictability of indirect branches before resource constraints
 * are introduced.
 *
 * Entries live in a FlatMap (open addressing, one arena) instead of
 * the node-based std::unordered_map the original implementation
 * used; ReferenceUnconstrainedTable in core/reference_tables.hh
 * keeps that original, and the differential tests pin the two
 * bit-identical.
 */

#ifndef IBP_CORE_UNCONSTRAINED_TABLE_HH
#define IBP_CORE_UNCONSTRAINED_TABLE_HH

#include "core/flat_table.hh"
#include "core/table.hh"

namespace ibp {

class UnconstrainedTable : public TargetTable
{
  public:
    explicit UnconstrainedTable(EntryCounterSpec counters = {})
        : _counters(counters)
    {
    }

    const TableEntry *
    probe(const Key &key) const override
    {
        return _entries.find(key);
    }

    TableEntry &
    access(const Key &key, bool &replaced) override
    {
        bool inserted = false;
        TableEntry &entry = _entries.findOrInsert(key, inserted);
        if (inserted) {
            entry.resetFor(_counters.confidenceBits,
                           _counters.chosenBits);
        }
        replaced = inserted;
        return entry;
    }

    std::uint64_t occupancy() const override { return _entries.size(); }
    std::uint64_t capacity() const override { return 0; }
    void reset() override { _entries.clear(); }
    std::string name() const override { return "unconstrained"; }

  private:
    EntryCounterSpec _counters;
    FlatMap<Key, TableEntry, KeyHash> _entries;
};

} // namespace ibp

#endif // IBP_CORE_UNCONSTRAINED_TABLE_HH
