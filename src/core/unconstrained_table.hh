/**
 * @file
 * Unlimited fully-associative table (section 3 of the paper).
 *
 * Models ideal hardware: every distinct key gets its own entry and
 * nothing is ever evicted. Used to measure the intrinsic
 * predictability of indirect branches before resource constraints
 * are introduced.
 */

#ifndef IBP_CORE_UNCONSTRAINED_TABLE_HH
#define IBP_CORE_UNCONSTRAINED_TABLE_HH

#include <unordered_map>

#include "core/table.hh"

namespace ibp {

class UnconstrainedTable : public TargetTable
{
  public:
    explicit UnconstrainedTable(EntryCounterSpec counters = {})
        : _counters(counters)
    {
    }

    const TableEntry *
    probe(const Key &key) const override
    {
        const auto it = _entries.find(key);
        return it == _entries.end() ? nullptr : &it->second;
    }

    TableEntry &
    access(const Key &key, bool &replaced) override
    {
        auto [it, inserted] = _entries.try_emplace(key);
        if (inserted) {
            it->second.resetFor(_counters.confidenceBits,
                                _counters.chosenBits);
        }
        replaced = inserted;
        return it->second;
    }

    std::uint64_t occupancy() const override { return _entries.size(); }
    std::uint64_t capacity() const override { return 0; }
    void reset() override { _entries.clear(); }
    std::string name() const override { return "unconstrained"; }

  private:
    EntryCounterSpec _counters;
    std::unordered_map<Key, TableEntry, KeyHash> _entries;
};

} // namespace ibp

#endif // IBP_CORE_UNCONSTRAINED_TABLE_HH
