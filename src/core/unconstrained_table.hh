/**
 * @file
 * Unlimited fully-associative table (section 3 of the paper).
 *
 * Models ideal hardware: every distinct key gets its own entry and
 * nothing is ever evicted. Used to measure the intrinsic
 * predictability of indirect branches before resource constraints
 * are introduced.
 *
 * Entries live in a FlatMap (open addressing, one arena) instead of
 * the node-based std::unordered_map the original implementation
 * used; ReferenceUnconstrainedTable in core/reference_tables.hh
 * keeps that original, and the differential tests pin the two
 * bit-identical.
 */

#ifndef IBP_CORE_UNCONSTRAINED_TABLE_HH
#define IBP_CORE_UNCONSTRAINED_TABLE_HH

#include "core/flat_table.hh"
#include "core/table.hh"

namespace ibp {

class UnconstrainedTable : public TargetTable
{
  public:
    explicit UnconstrainedTable(EntryCounterSpec counters = {})
        : _counters(counters)
    {
    }

    const TableEntry *
    probe(const Key &key) const override
    {
        // Probe-to-access fusion: predict() always probes the key
        // update() is about to access, and find() never mutates the
        // map, so a hit's slot pointer is still valid (no rehash can
        // intervene) when access() consumes the memo below.
        const TableEntry *entry = _entries.find(key);
        _memoEntry = const_cast<TableEntry *>(entry);
        _memoKey = key;
        return entry;
    }

    TableEntry &
    access(const Key &key, bool &replaced) override
    {
        if (_memoEntry != nullptr && _memoKey == key) {
            TableEntry &entry = *_memoEntry;
            _memoEntry = nullptr;
            replaced = false;
            return entry;
        }
        _memoEntry = nullptr;
        bool inserted = false;
        TableEntry &entry = _entries.findOrInsert(key, inserted);
        if (inserted) {
            entry.resetFor(_counters.confidenceBits,
                           _counters.chosenBits);
        }
        replaced = inserted;
        return entry;
    }

    std::uint64_t occupancy() const override { return _entries.size(); }
    std::uint64_t capacity() const override { return 0; }

    void
    reset() override
    {
        _entries.clear();
        _memoEntry = nullptr;
    }

    std::string name() const override { return "unconstrained"; }

  private:
    EntryCounterSpec _counters;
    FlatMap<Key, TableEntry, KeyHash> _entries;

    /** One-shot probe memo (see probe()); mutable because probe() is
     *  const. Invalidated by any access and by reset(). */
    mutable TableEntry *_memoEntry = nullptr;
    mutable Key _memoKey{};
};

} // namespace ibp

#endif // IBP_CORE_UNCONSTRAINED_TABLE_HH
