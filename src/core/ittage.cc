#include "core/ittage.hh"

#include <sstream>

#include "util/logging.hh"

namespace ibp {

std::string
IttageConfig::describe() const
{
    std::ostringstream out;
    out << "ittage[base=" << baseEntries << ",comp="
        << componentEntries << "x" << historyLengths.size() << ",L=";
    for (std::size_t i = 0; i < historyLengths.size(); ++i) {
        if (i)
            out << '/';
        out << historyLengths[i];
    }
    out << ']';
    return out.str();
}

IttagePredictor::IttagePredictor(const IttageConfig &config)
    : _config(config), _allocRng(0x1774A6Eu)
{
    if (!isPowerOfTwo(config.baseEntries) ||
        !isPowerOfTwo(config.componentEntries))
        fatal("ittage table sizes must be powers of two");
    if (config.historyLengths.empty() ||
        config.historyLengths.back() > 64)
        fatal("ittage history lengths must be 1..64");
    _base.resize(config.baseEntries);
    _components.assign(config.historyLengths.size(), {});
    for (auto &component : _components)
        component.resize(config.componentEntries);
}

std::uint64_t
IttagePredictor::foldedHistory(unsigned length, unsigned bits) const
{
    return xorFold(_pathHistory & lowMask(length), bits);
}

std::uint64_t
IttagePredictor::componentIndex(unsigned component, Addr pc) const
{
    const unsigned bits = floorLog2(_config.componentEntries);
    const unsigned length = _config.historyLengths[component];
    const std::uint64_t mixed =
        (pc >> 2) ^ foldedHistory(length, bits) ^
        (static_cast<std::uint64_t>(component) * 0x9e3779b9u);
    return mixed & lowMask(bits);
}

std::uint32_t
IttagePredictor::componentTag(unsigned component, Addr pc) const
{
    const unsigned length = _config.historyLengths[component];
    const std::uint64_t mixed =
        mix64((pc >> 2) ^
              (foldedHistory(length, _config.tagBits + 3) << 7) ^
              (static_cast<std::uint64_t>(component) << 27));
    return static_cast<std::uint32_t>(mixed &
                                      lowMask(_config.tagBits));
}

IttagePredictor::Lookup
IttagePredictor::lookup(Addr pc)
{
    Lookup result;
    // Longest history first.
    for (int c = static_cast<int>(_components.size()) - 1; c >= 0;
         --c) {
        const std::uint64_t index =
            componentIndex(static_cast<unsigned>(c), pc);
        const std::uint32_t tag =
            componentTag(static_cast<unsigned>(c), pc);
        const TaggedEntry &entry = _components[c][index];
        if (entry.valid && entry.tag == tag) {
            result.component = c;
            result.target = entry.target;
            result.valid = true;
            result.index = index;
            result.tag = tag;
            return result;
        }
    }
    const BaseEntry &base =
        _base[(pc >> 2) & lowMask(floorLog2(_config.baseEntries))];
    if (base.valid) {
        result.component = -1;
        result.target = base.target;
        result.valid = true;
    }
    return result;
}

Prediction
IttagePredictor::predict(Addr pc)
{
    const Lookup hit = lookup(pc);
    if (!hit.valid)
        return Prediction{};
    return Prediction{true, hit.target, 0};
}

void
IttagePredictor::update(Addr pc, Addr actual)
{
    const Lookup hit = lookup(pc);
    const bool correct = hit.valid && hit.target == actual;

    // Update the provider.
    if (hit.valid && hit.component >= 0) {
        TaggedEntry &entry = _components[hit.component][hit.index];
        if (entry.target == actual) {
            entry.confidence.increment();
            entry.useful = true;
        } else {
            entry.confidence.decrement();
            if (entry.confidence.value() == 0) {
                entry.target = actual;
                entry.useful = false;
            }
        }
    }

    // Base table always trains (it is the fallback).
    BaseEntry &base =
        _base[(pc >> 2) & lowMask(floorLog2(_config.baseEntries))];
    if (!base.valid) {
        base.valid = true;
        base.target = actual;
    } else if (base.target == actual) {
        base.hysteresis.hit();
    } else if (base.hysteresis.miss()) {
        base.target = actual;
    }

    // Allocate in one longer component on a misprediction.
    if (!correct) {
        const int first = hit.component + 1; // -1 -> 0
        std::vector<int> candidates;
        for (int c = first;
             c < static_cast<int>(_components.size()); ++c) {
            const std::uint64_t index =
                componentIndex(static_cast<unsigned>(c), pc);
            TaggedEntry &victim = _components[c][index];
            if (!victim.valid || !victim.useful)
                candidates.push_back(c);
        }
        if (!candidates.empty()) {
            // Prefer the shortest candidate, with a little
            // randomisation to avoid ping-pong (as in TAGE).
            const int pick =
                candidates[_allocRng.nextBool(0.75)
                               ? 0
                               : _allocRng.nextBelow(
                                     candidates.size())];
            const std::uint64_t index =
                componentIndex(static_cast<unsigned>(pick), pc);
            TaggedEntry &entry = _components[pick][index];
            entry.valid = true;
            entry.tag = componentTag(static_cast<unsigned>(pick), pc);
            entry.target = actual;
            entry.confidence = SatCounter(2);
            entry.useful = false;
        } else {
            // No room: age the useful bits along the allocation path.
            for (int c = first;
                 c < static_cast<int>(_components.size()); ++c) {
                const std::uint64_t index =
                    componentIndex(static_cast<unsigned>(c), pc);
                _components[c][index].useful = false;
            }
        }
    }

    // Shift two folded target bits into the path history (folding
    // keeps every target bit relevant, unlike raw low-bit slices).
    _pathHistory = (_pathHistory << 2) | xorFold(actual >> 2, 2);
}

void
IttagePredictor::reset()
{
    for (auto &entry : _base)
        entry = BaseEntry{};
    for (auto &component : _components) {
        for (auto &entry : component)
            entry = TaggedEntry{};
    }
    _pathHistory = 0;
    _allocRng = Rng(0x1774A6Eu);
}

std::string
IttagePredictor::name() const
{
    return _config.describe();
}

std::uint64_t
IttagePredictor::tableCapacity() const
{
    return _config.baseEntries +
           _config.componentEntries * _components.size();
}

std::uint64_t
IttagePredictor::tableOccupancy() const
{
    std::uint64_t count = 0;
    for (const auto &entry : _base)
        count += entry.valid ? 1 : 0;
    for (const auto &component : _components) {
        for (const auto &entry : component)
            count += entry.valid ? 1 : 0;
    }
    return count;
}

} // namespace ibp
