/**
 * @file
 * Shared-table hybrid predictor - the paper's future-work proposal
 * (section 8.1): "the different components can use one shared table.
 * Entries can be augmented with a 'chosen' counter, which keeps
 * track of the number of times an entry's prediction is used by the
 * hybrid predictor. This counter is consulted when updating table
 * entries, so that seldom used entries can be recuperated by a
 * different component, for better use of available hardware."
 *
 * Implementation: one set-associative table; each component (a
 * short- and a long-path key former) probes it with its own key.
 * Victim selection prefers invalid entries, then entries whose
 * chosen counter is zero, then LRU - so the storage split between
 * components floats with their usefulness instead of being fixed at
 * half/half like the section 6 hybrid.
 */

#ifndef IBP_CORE_SHARED_HYBRID_HH
#define IBP_CORE_SHARED_HYBRID_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/history_register.hh"
#include "core/pattern.hh"
#include "core/predictor.hh"
#include "util/sat_counter.hh"

namespace ibp {

/** Configuration of the shared-table hybrid. */
struct SharedHybridConfig
{
    /** Component path lengths, tie-break priority order. */
    std::vector<unsigned> pathLengths = {3, 9};

    /** Shared table geometry. */
    std::uint64_t entries = 1024;
    unsigned ways = 4;

    /** Confidence / chosen counter widths. */
    unsigned confidenceBits = 2;
    unsigned chosenBits = 2;

    bool hysteresis = true;

    /** Field-wise equality (content hashing keys on it). */
    bool operator==(const SharedHybridConfig &other) const = default;

    void validate() const;
    std::string describe() const;
};

class SharedHybridPredictor : public IndirectPredictor
{
  public:
    explicit SharedHybridPredictor(const SharedHybridConfig &config);

    Prediction predict(Addr pc) override;
    void update(Addr pc, Addr actual) override;
    void reset() override;
    std::string name() const override;

    std::uint64_t tableCapacity() const override
    {
        return _config.entries;
    }
    std::uint64_t tableOccupancy() const override;

    /** Component whose entry supplied the last prediction. */
    int lastChosen() const { return _lastChosen; }

  private:
    struct Way
    {
        bool valid = false;
        std::uint64_t tag = 0;
        Addr target = 0;
        HysteresisBit hysteresis;
        SatCounter confidence;
        SatCounter chosen;
        std::uint64_t lastUse = 0;
    };

    std::uint64_t indexOf(std::uint64_t key) const;
    std::uint64_t tagOf(std::uint64_t key) const;
    Way *find(std::uint64_t key);
    Way &victimFor(std::uint64_t key);

    SharedHybridConfig _config;
    std::vector<PatternBuilder> _builders;
    HistoryRegister _history;
    std::vector<Way> _storage;
    std::uint64_t _sets = 0;
    unsigned _indexBits = 0;
    std::uint64_t _clock = 0;
    int _lastChosen = -1;
};

} // namespace ibp

#endif // IBP_CORE_SHARED_HYBRID_HH
