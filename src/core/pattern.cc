#include "core/pattern.hh"

#include <algorithm>
#include <array>
#include <sstream>

#include "core/simd.hh"
#include "core/table_spec.hh"
#include "util/logging.hh"

namespace ibp {

std::string
toString(PrecisionMode mode)
{
    return mode == PrecisionMode::Full ? "full" : "limited";
}

std::string
toString(CompressorKind kind)
{
    switch (kind) {
      case CompressorKind::BitSelect: return "select";
      case CompressorKind::FoldXor:   return "fold";
      case CompressorKind::ShiftXor:  return "shiftxor";
    }
    return "?";
}

std::string
toString(InterleaveKind kind)
{
    switch (kind) {
      case InterleaveKind::Concat:   return "concat";
      case InterleaveKind::Straight: return "straight";
      case InterleaveKind::Reverse:  return "reverse";
      case InterleaveKind::PingPong: return "pingpong";
    }
    return "?";
}

std::string
toString(KeyMix mix)
{
    return mix == KeyMix::Concat ? "concat" : "xor";
}

unsigned
PatternSpec::resolvedBitsPerTarget() const
{
    if (precision == PrecisionMode::Full)
        return 32;
    if (bitsPerTarget != 0)
        return bitsPerTarget;
    if (pathLength == 0)
        return 0;
    // The paper's rule: the largest b such that b * p <= 24, at
    // least 1 bit per target (section 4.1).
    return std::max(1u, 24u / pathLength);
}

unsigned
PatternSpec::patternBits() const
{
    if (pathLength == 0)
        return 0;
    return resolvedBitsPerTarget() * pathLength;
}

void
PatternSpec::validate() const
{
    if (tableSharing < 2 || tableSharing > 32)
        fatal("table sharing h=%u outside [2, 32]", tableSharing);
    if (lowBit > 30)
        fatal("low bit a=%u outside [0, 30]", lowBit);
    if (precision == PrecisionMode::Limited) {
        if (pathLength > 24)
            fatal("limited-precision path length p=%u > 24", pathLength);
        const unsigned bits = patternBits();
        if (bits > 54)
            fatal("pattern of %u bits does not fit a 54-bit key", bits);
        if (keyMix == KeyMix::Concat && bits + 30 > 64)
            fatal("pattern of %u bits + 30 address bits exceeds 64",
                  bits);
    } else {
        if (pathLength > 64)
            fatal("path length p=%u unreasonably long", pathLength);
    }
}

std::string
PatternSpec::describe() const
{
    std::ostringstream out;
    out << "p=" << pathLength;
    if (precision == PrecisionMode::Full) {
        out << ",full";
    } else {
        out << ",b=" << resolvedBitsPerTarget()
            << ",a=" << lowBit
            << ',' << toString(compressor)
            << ',' << toString(interleave)
            << ",mix=" << toString(keyMix);
    }
    if (tableSharing != 2)
        out << ",h=" << tableSharing;
    if (!includeBranchAddress)
        out << ",noaddr";
    return out.str();
}

namespace {

#if IBP_X86_SIMD

[[gnu::target("bmi2")]] std::uint64_t
scatterPdep(std::uint64_t value, std::uint64_t mask)
{
    return _pdep_u64(value, mask);
}

#endif // IBP_X86_SIMD

/**
 * Deposit the low bits of @p value into the set bit positions of
 * @p mask, lowest first (PDEP semantics; hardware PDEP when the CPU
 * has BMI2 and the IBP_SIMD override allows it — core/simd.hh owns
 * both checks, so non-x86/non-GNU builds compile the portable loop
 * only). The masks here have at most b bits set, so the portable
 * loop is short and branch-light.
 */
std::uint64_t
scatterBits(std::uint64_t value, std::uint64_t mask, bool hw)
{
#if IBP_X86_SIMD
    if (hw)
        return scatterPdep(value, mask);
#else
    (void)hw;
#endif
    std::uint64_t out = 0;
    while (mask != 0) {
        const std::uint64_t bit = mask & (~mask + 1);
        if (value & 1)
            out |= bit;
        value >>= 1;
        mask ^= bit;
    }
    return out;
}

} // namespace

PatternBuilder::PatternBuilder(const PatternSpec &spec)
    : _spec(spec), _bits(spec.resolvedBitsPerTarget()),
      _scatterHw(simdScatterEnabled()),
      _flat(tableImplementation() == TableImpl::Flat)
{
    _spec.validate();

    // Precompute the round-robin destination masks (see _scatter).
    // Position j of the pattern takes bit j/p of target
    // order[j % p]; inverting that per target gives a regular
    // stride-p scatter starting at the target's slot in the order.
    if (_spec.precision == PrecisionMode::Limited &&
        _spec.compressor != CompressorKind::ShiftXor &&
        _spec.interleave != InterleaveKind::Concat &&
        _spec.pathLength > 0) {
        const unsigned p = _spec.pathLength;
        _scatter.assign(p, 0);
        for (unsigned q = 0; q < p; ++q) {
            unsigned target = 0;
            switch (_spec.interleave) {
              case InterleaveKind::Straight:
                target = q;
                break;
              case InterleaveKind::Reverse:
                target = p - 1 - q;
                break;
              case InterleaveKind::PingPong:
                target = (q % 2 == 0) ? q / 2 : p - 1 - q / 2;
                break;
              case InterleaveKind::Concat:
                panic("unreachable interleave kind");
            }
            for (unsigned round = 0; round < _bits; ++round)
                _scatter[target] |= std::uint64_t{1}
                                    << (q + round * p);
        }
    }
}

std::uint64_t
PatternBuilder::compressTarget(Addr target) const
{
    switch (_spec.compressor) {
      case CompressorKind::BitSelect:
        return bitsRange(target, _spec.lowBit, _bits);
      case CompressorKind::FoldXor:
        // Fold the address above the alignment bits so the constant
        // zero bits 0..1 do not dilute the result.
        return xorFold(target >> 2, _bits);
      case CompressorKind::ShiftXor:
        // Elements are not compressed individually in this scheme.
        return target;
    }
    panic("unreachable compressor kind");
}

std::uint64_t
PatternBuilder::referenceInterleavedPattern(
    const HistoryBuffer &history) const
{
    // The retained seed implementation, the differential oracle for
    // the scatter-mask assembly below: compress every target, then
    // place the pattern bit by bit with an explicit round/slot
    // schedule.
    const unsigned p = _spec.pathLength;
    const unsigned total = _bits * p;

    std::array<std::uint64_t, 64> compressed{};
    IBP_ASSERT(p <= compressed.size(), "path length %u", p);
    for (unsigned i = 0; i < p; ++i)
        compressed[i] = compressTarget(history.at(i));

    if (_spec.interleave == InterleaveKind::Concat) {
        std::uint64_t pattern = 0;
        for (unsigned i = 0; i < p; ++i)
            pattern |= compressed[i] << (i * _bits);
        return pattern;
    }

    std::array<unsigned, 64> order{};
    switch (_spec.interleave) {
      case InterleaveKind::Straight:
        for (unsigned q = 0; q < p; ++q)
            order[q] = q;
        break;
      case InterleaveKind::Reverse:
        for (unsigned q = 0; q < p; ++q)
            order[q] = p - 1 - q;
        break;
      case InterleaveKind::PingPong:
        for (unsigned q = 0; q < p; ++q)
            order[q] = (q % 2 == 0) ? q / 2 : p - 1 - q / 2;
        break;
      case InterleaveKind::Concat:
        panic("unreachable interleave kind");
    }

    std::uint64_t pattern = 0;
    for (unsigned j = 0; j < total; ++j) {
        const unsigned round = j / p;
        const unsigned slot = j % p;
        const std::uint64_t bit =
            (compressed[order[slot]] >> round) & 1;
        pattern |= bit << j;
    }
    return pattern;
}

std::uint64_t
PatternBuilder::interleavedPattern(const HistoryBuffer &history) const
{
    const unsigned p = _spec.pathLength;

    if (_spec.interleave == InterleaveKind::Concat) {
        // Newest target (index 0) in the least-significant bits.
        std::uint64_t pattern = 0;
        for (unsigned i = 0; i < p; ++i)
            pattern |= compressTarget(history.at(i)) << (i * _bits);
        return pattern;
    }

    // Round-robin bit assembly (Figure 15). Within each round the
    // targets contribute one bit each, in scheme order; the pattern
    // is filled LSB-first, so the ordering decides which targets are
    // represented most precisely in the low-order (index) bits. The
    // constructor folded the whole schedule into one scatter mask
    // per target (this runs once per simulated branch).
    std::uint64_t pattern = 0;
    for (unsigned i = 0; i < p; ++i)
        pattern |= scatterBits(compressTarget(history.at(i)),
                               _scatter[i], _scatterHw);
    return pattern;
}

std::uint64_t
PatternBuilder::shiftXorPattern(const HistoryBuffer &history) const
{
    // Oldest to newest: shift left by b and xor in the whole target,
    // truncated to the pattern width (section 4.1, second variant).
    const unsigned p = _spec.pathLength;
    const std::uint64_t mask = lowMask(std::min(_spec.patternBits(),
                                                54u));
    std::uint64_t pattern = 0;
    for (unsigned i = p; i-- > 0;) {
        pattern = ((pattern << _bits) ^ (history.at(i) >> 2)) & mask;
    }
    return pattern;
}

std::uint64_t
PatternBuilder::assemblePattern(const HistoryBuffer &history) const
{
    IBP_ASSERT(_spec.precision == PrecisionMode::Limited,
               "assemblePattern in full-precision mode");
    IBP_ASSERT(history.depth() >= _spec.pathLength,
               "history depth %u < path length %u", history.depth(),
               _spec.pathLength);
    if (_spec.pathLength == 0)
        return 0;
    if (_spec.compressor == CompressorKind::ShiftXor)
        return shiftXorPattern(history);
    if (!_flat)
        return referenceInterleavedPattern(history);
    return interleavedPattern(history);
}

Key
PatternBuilder::buildKey(Addr pc, const HistoryBuffer &history) const
{
    if (_spec.precision == PrecisionMode::Full) {
        // Exact (hashed) key over the address part and the p most
        // recent full targets. Only the first `count` words are
        // written and read, so the array stays uninitialised.
        const std::uint64_t addr_part =
            _spec.tableSharing >= 32 ? 0 : (pc >> _spec.tableSharing);
        std::array<std::uint64_t, 66> words;
        unsigned count = 0;
        if (_spec.includeBranchAddress)
            words[count++] = addr_part;
        for (unsigned i = 0; i < _spec.pathLength; ++i)
            words[count++] = history.at(i);
        return makeHashedKey(words.data(), count);
    }

    return keyFromPattern(pc, assemblePattern(history));
}

bool
PatternBuilder::fastAssemblyEligible() const
{
    return _flat && _spec.precision == PrecisionMode::Limited &&
           _spec.compressor == CompressorKind::BitSelect &&
           _spec.pathLength > 0;
}

std::uint64_t
PatternBuilder::assembleFromCompressed(
    const std::uint64_t *compressed) const
{
    IBP_ASSERT(fastAssemblyEligible(), "fast assembly ineligible");
    const unsigned p = _spec.pathLength;

    if (_spec.interleave == InterleaveKind::Concat) {
        const std::uint64_t mask = lowMask(_bits);
        std::uint64_t pattern = 0;
        for (unsigned i = 0; i < p; ++i)
            pattern |= (compressed[i] & mask) << (i * _bits);
        return pattern;
    }

    // _scatter[i] has exactly _bits set positions, so any extra high
    // bits in a wider-than-b cache entry are never deposited.
    std::uint64_t pattern = 0;
    for (unsigned i = 0; i < p; ++i)
        pattern |= scatterBits(compressed[i], _scatter[i], _scatterHw);
    return pattern;
}

bool
PatternBuilder::incrementalAdvanceEligible() const
{
    if (!_flat || _spec.precision != PrecisionMode::Limited ||
        _spec.pathLength == 0)
        return false;
    // ShiftXor is a shift-and-xor by construction (the interleave
    // kind does not apply to it); the interleaves are uniform shifts
    // except PingPong, whose schedule alternates ends.
    if (_spec.compressor == CompressorKind::ShiftXor)
        return true;
    return _spec.interleave != InterleaveKind::PingPong;
}

std::uint64_t
PatternBuilder::advancePattern(std::uint64_t pattern, Addr element) const
{
    IBP_ASSERT(incrementalAdvanceEligible(),
               "incremental advance ineligible");

    if (_spec.compressor == CompressorKind::ShiftXor) {
        // Identical to one step of shiftXorPattern(); a dropped-out
        // element's contribution has shifted past the <= 54-bit
        // pattern width after p pushes, so the running value equals
        // the windowed recompute.
        const std::uint64_t mask =
            lowMask(std::min(_spec.patternBits(), 54u));
        return ((pattern << _bits) ^ (element >> 2)) & mask;
    }

    const std::uint64_t bits = compressTarget(element);
    if (_spec.interleave == InterleaveKind::Concat) {
        // Every target moves up one b-bit group; the oldest falls
        // off the masked top, the new element takes the low group.
        return ((pattern << _bits) &
                lowMask(_bits * _spec.pathLength)) |
               bits;
    }

    // Round-robin: a push moves each target one slot along the
    // scheme order. For Straight (slot q holds target q) that is a
    // uniform +1 position shift of the whole pattern; for Reverse
    // (slot q holds target p-1-q) a -1 shift. The newest target's
    // scatter positions are cleared of shifted-in remnants of the
    // dropped oldest target and refilled from the new element.
    const std::uint64_t newest = _scatter[0];
    if (_spec.interleave == InterleaveKind::Straight) {
        const std::uint64_t total =
            lowMask(_bits * _spec.pathLength);
        return ((pattern << 1) & total & ~newest) |
               scatterBits(bits, newest, _scatterHw);
    }
    return ((pattern >> 1) & ~newest) |
           scatterBits(bits, newest, _scatterHw);
}

unsigned
PatternBuilder::indexBits(std::uint64_t sets)
{
    IBP_ASSERT(isPowerOfTwo(sets), "table sets %llu not a power of two",
               static_cast<unsigned long long>(sets));
    return floorLog2(sets);
}

} // namespace ibp
