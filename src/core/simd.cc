#include "core/simd.hh"

#include <bit>
#include <cstdlib>
#include <cstring>

namespace ibp {

namespace {

struct SimdConfig
{
    SimdLevel level = SimdLevel::Scalar;
    const char *reason = "";
    /** Widest level the hardware/build supports (test-hook clamp). */
    SimdLevel hardwareMax = SimdLevel::Scalar;
    bool haveBmi2 = false;
};

SimdConfig
detect()
{
    SimdConfig config;
#if IBP_X86_SIMD
    config.hardwareMax = __builtin_cpu_supports("avx2") != 0
                             ? SimdLevel::Avx2
                             : SimdLevel::Sse2;
    config.haveBmi2 = __builtin_cpu_supports("bmi2") != 0;
#else
    config.hardwareMax = SimdLevel::Scalar;
#endif

    config.level = config.hardwareMax;
    config.reason = config.hardwareMax == SimdLevel::Avx2
                        ? ""
                        : (config.hardwareMax == SimdLevel::Sse2
                               ? "cpu-lacks-avx2"
                               : "non-x86-build");

    const char *env = std::getenv("IBP_SIMD");
    if (env == nullptr || *env == '\0' ||
        std::strcmp(env, "auto") == 0) {
        return config;
    }
    if (std::strcmp(env, "off") == 0 ||
        std::strcmp(env, "scalar") == 0) {
        config.level = SimdLevel::Scalar;
        config.reason = "IBP_SIMD=off";
    } else if (std::strcmp(env, "sse2") == 0) {
        if (config.level > SimdLevel::Sse2) {
            config.level = SimdLevel::Sse2;
            config.reason = "IBP_SIMD=sse2";
        }
    }
    // "avx2" (and unrecognised values) keep the auto choice: forcing
    // a width the CPU lacks would fault, so the cap only goes down.
    return config;
}

SimdConfig &
configSlot()
{
    static SimdConfig config = detect();
    return config;
}

} // namespace

SimdLevel
simdLevel()
{
    return configSlot().level;
}

const char *
simdLevelName(SimdLevel level)
{
    switch (level) {
      case SimdLevel::Scalar: return "scalar";
      case SimdLevel::Sse2:   return "sse2";
      case SimdLevel::Avx2:   return "avx2";
    }
    return "?";
}

const char *
simdFallbackReason()
{
    return configSlot().reason;
}

bool
simdScatterEnabled()
{
    const SimdConfig &config = configSlot();
    return config.haveBmi2 && config.level != SimdLevel::Scalar;
}

SimdLevel
setSimdLevelForTest(SimdLevel level)
{
    SimdConfig &config = configSlot();
    if (level > config.hardwareMax)
        level = config.hardwareMax;
    config.level = level;
    config.reason =
        level == config.hardwareMax ? "" : "test-override";
    return level;
}

namespace simd {

#if IBP_X86_SIMD

[[gnu::target("avx2")]] TagGroup
scanTags32(const std::uint8_t *tags, std::uint8_t tag)
{
    TagGroup group;
    const __m256i bytes =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(tags));
    group.matches =
        static_cast<std::uint32_t>(_mm256_movemask_epi8(
            _mm256_cmpeq_epi8(
                bytes, _mm256_set1_epi8(static_cast<char>(tag)))));
    group.empties =
        static_cast<std::uint32_t>(_mm256_movemask_epi8(
            _mm256_cmpeq_epi8(bytes, _mm256_setzero_si256())));
    return group;
}

#else // !IBP_X86_SIMD

TagGroup
scanTags32(const std::uint8_t *tags, std::uint8_t tag)
{
    TagGroup group;
    for (unsigned i = 0; i < 32; ++i) {
        group.matches |= (tags[i] == tag ? 1u : 0u) << i;
        group.empties |= (tags[i] == 0 ? 1u : 0u) << i;
    }
    return group;
}

#endif // IBP_X86_SIMD

namespace {

std::size_t
classifyMetaScalar(const std::uint8_t *meta, std::size_t count,
                   std::uint32_t base, bool includeConditionals,
                   std::uint32_t *out)
{
    std::size_t written = 0;
    for (std::size_t i = 0; i < count; ++i) {
        const std::uint8_t kind = meta[i] & 0x7fu;
        const bool interesting =
            includeConditionals ? kind < 4 : (kind - 1u) < 3u;
        if (interesting)
            out[written++] = base + static_cast<std::uint32_t>(i);
    }
    return written;
}

/** Turn a selected-lane bitmask into record indices, lane order. */
inline std::size_t
emitMask(std::uint32_t mask, std::uint32_t base, std::uint32_t *out)
{
    std::size_t written = 0;
    while (mask != 0) {
        const unsigned lane =
            static_cast<unsigned>(std::countr_zero(mask));
        out[written++] = base + lane;
        mask &= mask - 1;
    }
    return written;
}

#if IBP_X86_SIMD

std::size_t
classifyMetaSse2(const std::uint8_t *meta, std::size_t count,
                 std::uint32_t base, bool includeConditionals,
                 std::uint32_t *out)
{
    // kind = meta & 0x7f is in [0, 4], so signed byte compares are
    // exact: select 0 < kind < 4 (indirect) or kind < 4 (also
    // conditionals).
    const __m128i kind_mask = _mm_set1_epi8(0x7f);
    const __m128i zero = _mm_setzero_si128();
    const __m128i four = _mm_set1_epi8(4);
    std::size_t written = 0;
    std::size_t i = 0;
    for (; i + 16 <= count; i += 16) {
        const __m128i bytes = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(meta + i));
        const __m128i kind = _mm_and_si128(bytes, kind_mask);
        __m128i selected = _mm_cmpgt_epi8(four, kind);
        if (!includeConditionals) {
            selected = _mm_and_si128(selected,
                                     _mm_cmpgt_epi8(kind, zero));
        }
        const auto mask = static_cast<std::uint32_t>(
            _mm_movemask_epi8(selected));
        written += emitMask(
            mask, base + static_cast<std::uint32_t>(i),
            out + written);
    }
    written += classifyMetaScalar(
        meta + i, count - i, base + static_cast<std::uint32_t>(i),
        includeConditionals, out + written);
    return written;
}

[[gnu::target("avx2")]] std::size_t
classifyMetaAvx2(const std::uint8_t *meta, std::size_t count,
                 std::uint32_t base, bool includeConditionals,
                 std::uint32_t *out)
{
    const __m256i kind_mask = _mm256_set1_epi8(0x7f);
    const __m256i zero = _mm256_setzero_si256();
    const __m256i four = _mm256_set1_epi8(4);
    std::size_t written = 0;
    std::size_t i = 0;
    for (; i + 32 <= count; i += 32) {
        const __m256i bytes = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(meta + i));
        const __m256i kind = _mm256_and_si256(bytes, kind_mask);
        __m256i selected = _mm256_cmpgt_epi8(four, kind);
        if (!includeConditionals) {
            selected = _mm256_and_si256(
                selected, _mm256_cmpgt_epi8(kind, zero));
        }
        const auto mask = static_cast<std::uint32_t>(
            _mm256_movemask_epi8(selected));
        written += emitMask(
            mask, base + static_cast<std::uint32_t>(i),
            out + written);
    }
    written += classifyMetaScalar(
        meta + i, count - i, base + static_cast<std::uint32_t>(i),
        includeConditionals, out + written);
    return written;
}

#endif // IBP_X86_SIMD

} // namespace

std::size_t
classifyMeta(const std::uint8_t *meta, std::size_t count,
             std::uint32_t base, bool includeConditionals,
             std::uint32_t *out)
{
#if IBP_X86_SIMD
    switch (simdLevel()) {
      case SimdLevel::Avx2:
        return classifyMetaAvx2(meta, count, base,
                                includeConditionals, out);
      case SimdLevel::Sse2:
        return classifyMetaSse2(meta, count, base,
                                includeConditionals, out);
      case SimdLevel::Scalar:
        break;
    }
#endif
    return classifyMetaScalar(meta, count, base, includeConditionals,
                              out);
}

} // namespace simd

} // namespace ibp
