#include "core/hybrid.hh"

#include <sstream>

#include "util/logging.hh"

namespace ibp {

std::string
toString(MetaKind kind)
{
    return kind == MetaKind::Confidence ? "confidence" : "selector";
}

void
HybridConfig::validate() const
{
    if (components.size() < 2)
        fatal("hybrid predictor needs >= 2 components");
    if (meta == MetaKind::Selector && components.size() != 2)
        fatal("selector metaprediction supports exactly 2 components");
    if (confidenceBits < 1 || confidenceBits > 8)
        fatal("confidence width %u outside [1, 8]", confidenceBits);
    if (selectorEntries != 0 && !isPowerOfTwo(selectorEntries))
        fatal("selector table size %llu not a power of two",
              static_cast<unsigned long long>(selectorEntries));
    for (const auto &component : components)
        component.validate();
}

std::string
HybridConfig::describe() const
{
    std::ostringstream out;
    out << "hybrid[" << toString(meta) << confidenceBits;
    for (const auto &component : components)
        out << ';' << component.describe();
    out << ']';
    return out.str();
}

HybridConfig
HybridConfig::twoComponent(const TwoLevelConfig &first,
                           const TwoLevelConfig &second)
{
    HybridConfig config;
    config.components = {first, second};
    return config;
}

HybridPredictor::HybridPredictor(const HybridConfig &config)
    : _config(config),
      _flatSelector(tableImplementation() == TableImpl::Flat)
{
    _config.validate();
    for (auto component : _config.components) {
        component.confidenceBits = _config.confidenceBits;
        _components.push_back(
            std::make_unique<TwoLevelPredictor>(component));
    }
    if (_config.meta == MetaKind::Selector &&
        _config.selectorEntries != 0) {
        _selectorTable.assign(_config.selectorEntries, SatCounter(2));
    }
    _cachePreds.resize(_components.size());
}

SatCounter &
HybridPredictor::selectorCounter(Addr pc)
{
    if (!_selectorTable.empty())
        return _selectorTable[(pc >> 2) & (_selectorTable.size() - 1)];
    if (!_flatSelector) {
        auto [it, inserted] =
            _refSelectorMap.try_emplace(pc, SatCounter(2));
        return it->second;
    }
    bool inserted = false;
    return _selectorMap.findOrInsert(pc, inserted);
}

Prediction
HybridPredictor::predict(Addr pc)
{
    for (std::size_t i = 0; i < _components.size(); ++i)
        _cachePreds[i] = _components[i]->predict(pc);
    _cacheValid = true;
    _cachePc = pc;

    int chosen = -1;
    if (_config.meta == MetaKind::Confidence) {
        // Highest confidence wins; ties go to the earlier component
        // (the paper's "fixed ordering"). Components with no entry
        // report confidence -1 and lose to any real entry.
        int best = -2;
        for (std::size_t i = 0; i < _cachePreds.size(); ++i) {
            if (_cachePreds[i].confidence > best) {
                best = _cachePreds[i].confidence;
                chosen = static_cast<int>(i);
            }
        }
        if (chosen >= 0 && !_cachePreds[chosen].valid)
            chosen = -1;
    } else {
        const SatCounter &counter = selectorCounter(pc);
        // Upper half of the counter range prefers component 0.
        chosen = counter.isConfident() ? 0 : 1;
        if (!_cachePreds[chosen].valid)
            chosen ^= 1; // fall back to the other component
        if (!_cachePreds[chosen].valid)
            chosen = -1;
    }

    _lastChosen = chosen;
    if (chosen < 0)
        return Prediction{};
    return _cachePreds[chosen];
}

void
HybridPredictor::update(Addr pc, Addr actual)
{
    if (_config.meta == MetaKind::Selector) {
        // Re-derive the component predictions if the caller skipped
        // predict(). Only the selector consumes them here; confidence
        // metaprediction trains purely through the components.
        if (!_cacheValid || _cachePc != pc) {
            for (std::size_t i = 0; i < _components.size(); ++i)
                _cachePreds[i] = _components[i]->predict(pc);
        }
        const bool first = _cachePreds[0].correctFor(actual);
        const bool second = _cachePreds[1].correctFor(actual);
        SatCounter &counter = selectorCounter(pc);
        if (first && !second)
            counter.increment();
        else if (second && !first)
            counter.decrement();
    }

    // Every component trains on every branch (tables, hysteresis and
    // per-entry confidence), regardless of which one was chosen.
    for (auto &component : _components)
        component->update(pc, actual);

    _cacheValid = false;
}

void
HybridPredictor::observeConditional(Addr pc, bool taken, Addr target)
{
    for (auto &component : _components)
        component->observeConditional(pc, taken, target);
}

bool
HybridPredictor::joinSweepKernel(SweepKernel &kernel)
{
    // Each component keeps its own history when solo, but every one
    // of them observes the same branch stream, so sharing a group
    // register per signature (and one commit per branch) is
    // observationally identical.
    for (auto &component : _components)
        component->joinSweepKernel(kernel);
    return true;
}

void
HybridPredictor::reset()
{
    for (auto &component : _components)
        component->reset();
    for (auto &counter : _selectorTable)
        counter.reset();
    _selectorMap.clear();
    _refSelectorMap.clear();
    _cacheValid = false;
    _lastChosen = -1;
}

std::string
HybridPredictor::name() const
{
    return _config.describe();
}

std::uint64_t
HybridPredictor::tableCapacity() const
{
    std::uint64_t total = 0;
    for (const auto &component : _components) {
        if (component->tableCapacity() == 0)
            return 0; // any unbounded component makes the sum unbounded
        total += component->tableCapacity();
    }
    return total;
}

std::uint64_t
HybridPredictor::tableOccupancy() const
{
    std::uint64_t total = 0;
    for (const auto &component : _components)
        total += component->tableOccupancy();
    return total;
}

} // namespace ibp
