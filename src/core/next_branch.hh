/**
 * @file
 * Next-branch prediction - the paper's last future-work idea
 * (section 8.1): "A predictor could predict not only the target of
 * a branch but also the address of the next indirect branch to be
 * executed. This disambiguates branches that lie on different
 * conditional control flow paths but share the same indirect branch
 * path, and allows a predictor to run, in principle, arbitrarily
 * far ahead of execution."
 *
 * Entries store a (target, next-branch PC) pair keyed like the
 * unconstrained two-level predictor; a prediction is *fully*
 * correct when both halves match, which is what run-ahead fetch
 * would need. The driver supplies the next indirect branch's PC at
 * update time (see bench/ext_future_work).
 */

#ifndef IBP_CORE_NEXT_BRANCH_HH
#define IBP_CORE_NEXT_BRANCH_HH

#include <string>
#include <unordered_map>

#include "core/flat_table.hh"
#include "core/history_register.hh"
#include "core/pattern.hh"
#include "util/sat_counter.hh"

namespace ibp {

/** Joint (target, next indirect branch) prediction. */
struct NextBranchPrediction
{
    bool valid = false;
    Addr target = 0;
    Addr nextPc = 0;
};

class NextBranchPredictor
{
  public:
    /**
     * @param pathLength path length of the (unconstrained,
     *        full-precision) pattern, as in section 3.
     */
    explicit NextBranchPredictor(unsigned pathLength,
                                 bool hysteresis = true);

    /** Predict (target, next indirect branch PC) for @p pc. */
    NextBranchPrediction predict(Addr pc);

    /**
     * Commit a resolved branch: its actual target and the PC of the
     * indirect branch that followed it in the trace.
     */
    void update(Addr pc, Addr actual, Addr next_pc);

    void reset();
    std::string name() const;
    std::size_t
    entries() const
    {
        return _flat ? _entries.size() : _refEntries.size();
    }

  private:
    struct Entry
    {
        Addr target = 0;
        Addr nextPc = 0;
        HysteresisBit hysteresis;
    };

    Entry &findOrInsertEntry(const Key &key, bool &inserted);

    bool _hysteresis;
    bool _flat;
    PatternBuilder _builder;
    HistoryRegister _history;
    FlatMap<Key, Entry, KeyHash> _entries;
    std::unordered_map<Key, Entry, KeyHash> _refEntries;
};

} // namespace ibp

#endif // IBP_CORE_NEXT_BRANCH_HH
