/**
 * @file
 * Second-level key formation: compress the target-address history
 * into a pattern and mix it with the branch address.
 *
 * This implements the paper's sections 3.2.2 (history-table sharing
 * parameter h), 4.1 (history-pattern compression: bit selection from
 * bit a=2, xor-folding, shift-xor), 4.2 (concatenating vs xor-ing the
 * branch address, the "gshare analogy"), and 5.2.1 (concatenation vs
 * straight / reverse / ping-pong interleaving of target bits, which
 * determines which bits land in the index part of the key).
 */

#ifndef IBP_CORE_PATTERN_HH
#define IBP_CORE_PATTERN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/history_register.hh"
#include "core/key.hh"
#include "util/bits.hh"

namespace ibp {

/** Full 32-bit targets (section 3) or b-bit compressed (section 4). */
enum class PrecisionMode { Full, Limited };

/** How a target address is reduced to b bits (section 4.1). */
enum class CompressorKind
{
    /** Select bits [a .. a+b-1]; the paper's winning scheme. */
    BitSelect,
    /** Xor-fold the whole address into b bits (rejected variant). */
    FoldXor,
    /** Shift pattern left b bits, xor in the whole new target
     *  (rejected variant; element order is fixed, so the
     *  InterleaveKind does not apply). */
    ShiftXor,
};

/** How per-target bit groups are assembled into the pattern. */
enum class InterleaveKind
{
    /** Newest target in the least-significant b bits (section 5.2.1
     *  shows this starves the index of older-target bits). */
    Concat,
    /** Round-robin, newest targets represented most precisely. */
    Straight,
    /** Round-robin, oldest targets most precise; the paper's pick. */
    Reverse,
    /** Round-robin from both ends (newest and oldest most precise). */
    PingPong,
};

/** How the branch address is combined with the pattern (section 4.2). */
enum class KeyMix
{
    /** key = pattern . addr - larger tags, slightly more accurate. */
    Concat,
    /** key = pattern xor addr - the gshare analogy; adopted. */
    Xor,
};

/** Names for reporting. */
std::string toString(PrecisionMode mode);
std::string toString(CompressorKind kind);
std::string toString(InterleaveKind kind);
std::string toString(KeyMix mix);

/**
 * Complete key-formation recipe for a two-level predictor.
 * Field semantics follow Table 4 of the paper.
 */
struct PatternSpec
{
    /** Path length p: number of history targets in the pattern. */
    unsigned pathLength = 3;

    PrecisionMode precision = PrecisionMode::Limited;

    /**
     * Bits per target b; 0 selects the paper's auto rule: the largest
     * b with b * p <= 24 (and at least 1).
     */
    unsigned bitsPerTarget = 0;

    /** First selected address bit a (word alignment makes 2 best). */
    unsigned lowBit = 2;

    CompressorKind compressor = CompressorKind::BitSelect;
    InterleaveKind interleave = InterleaveKind::Reverse;
    KeyMix keyMix = KeyMix::Xor;

    /**
     * History-table sharing h in [2, 32]: branches whose address bits
     * h..31 agree share one history table. h = 2 gives per-address
     * tables (the paper's winner), h >= 32 a single shared table.
     */
    unsigned tableSharing = 2;

    /** Omitting the branch address is a rejected variant (3.3). */
    bool includeBranchAddress = true;

    /** Field-wise equality (sweep kernels deduplicate recipes). */
    bool operator==(const PatternSpec &other) const = default;

    /** The resolved b for this spec (applies the auto rule). */
    unsigned resolvedBitsPerTarget() const;

    /** Total pattern width b * p in bits (limited mode). */
    unsigned patternBits() const;

    /** Validate ranges; calls fatal() on user error. */
    void validate() const;

    /** Compact human-readable description. */
    std::string describe() const;
};

/**
 * Stateless key builder for one PatternSpec. Given a branch PC and
 * its history buffer, produces the table lookup key.
 */
class PatternBuilder
{
  public:
    explicit PatternBuilder(const PatternSpec &spec);

    const PatternSpec &spec() const { return _spec; }

    /** The b-bit compressed form of one target (BitSelect/FoldXor). */
    std::uint64_t compressTarget(Addr target) const;

    /**
     * Assemble the limited-precision history pattern from the p most
     * recent targets in @p history (history.depth() must be >= p).
     */
    std::uint64_t assemblePattern(const HistoryBuffer &history) const;

    /** The full lookup key for branch @p pc under @p history. */
    Key buildKey(Addr pc, const HistoryBuffer &history) const;

    /**
     * True when this recipe can assemble its pattern from an external
     * cache of bit-selected targets (assembleFromCompressed): flat
     * build, limited precision, BitSelect compressor, p > 0. Sweep
     * kernels share one such cache across every column of a group.
     */
    bool fastAssemblyEligible() const;

    /**
     * Assemble the pattern from @p compressed, the per-target
     * bit-selections bitsRange(target_i, a, B) for i in [0, p)
     * (newest first) with B >= this recipe's b and the same a. Wider
     * entries are fine: the scatter masks (and the Concat mask)
     * consume exactly b low bits. Only valid when
     * fastAssemblyEligible(); bit-identical to assemblePattern().
     */
    std::uint64_t
    assembleFromCompressed(const std::uint64_t *compressed) const;

    /**
     * Mix an already-assembled limited-precision pattern with the
     * branch address into the final key (the tail of buildKey()).
     * Inline: this is the whole per-branch key work of an
     * incremental sweep variant, so it must fold into the lane
     * engine's key-resolution loop.
     */
    Key
    keyFromPattern(Addr pc, std::uint64_t pattern) const
    {
        if (!_spec.includeBranchAddress)
            return makeExactKey(pattern);

        // The address part of the key: bits h.. of the branch address
        // (h = 2 keeps the full word-aligned address and gives the
        // per-address tables the paper settles on).
        const std::uint64_t addr_part =
            _spec.tableSharing >= 32 ? 0
                                     : (pc >> _spec.tableSharing);
        const std::uint64_t addr30 = addr_part & lowMask(30);
        if (_spec.keyMix == KeyMix::Xor)
            return makeExactKey(pattern ^ addr30);
        return makeExactKey((pattern << 30) | addr30);
    }

    /**
     * True when the pattern can be maintained *incrementally*: given
     * the pattern over targets (t0..tp-1), one call to
     * advancePattern() produces the pattern over (new, t0..tp-2)
     * without revisiting the history buffer. Holds for every flat
     * limited-precision recipe whose assembly is a per-push shift -
     * Concat/Straight/Reverse interleaves and ShiftXor (PingPong's
     * schedule is not a uniform shift). Sweep kernels use this to
     * advance a global-history pattern once per commit instead of
     * re-assembling it per branch.
     */
    bool incrementalAdvanceEligible() const;

    /**
     * The pattern after pushing @p element as the new most-recent
     * history entry (see incrementalAdvanceEligible()); bit-identical
     * to re-running assemblePattern() over the shifted history.
     */
    std::uint64_t advancePattern(std::uint64_t pattern,
                                 Addr element) const;

    /**
     * Number of low key bits that index a table of @p sets sets; the
     * remaining bits form the tag. Exposed for documentation/tests.
     */
    static unsigned indexBits(std::uint64_t sets);

  private:
    std::uint64_t interleavedPattern(const HistoryBuffer &history) const;
    std::uint64_t
    referenceInterleavedPattern(const HistoryBuffer &history) const;
    std::uint64_t shiftXorPattern(const HistoryBuffer &history) const;

    PatternSpec _spec;
    unsigned _bits; // resolved bits per target

    /**
     * simdScatterEnabled() captured at construction, so the per-call
     * scatter dispatch is one predictable member-byte branch instead
     * of a global config load in the hottest assembly loop.
     */
    bool _scatterHw;

    /**
     * Captured from tableImplementation() at construction: the
     * Reference build keeps the seed's bit-by-bit interleaving
     * (referenceInterleavedPattern) so the differential tests pin
     * the precomputed-scatter assembly against the original, and so
     * the flat-vs-reference throughput comparison measures the whole
     * per-branch engine rather than table storage alone.
     */
    bool _flat;

    /**
     * Round-robin interleaving, precomputed: _scatter[i] has one bit
     * set per destination position of target i's compressed bits
     * (ascending, so depositing bit r of the compressed target into
     * the r-th set position reproduces the Figure-15 assembly). Built
     * once per PatternBuilder; the per-branch assembly is then p
     * bit-scatters instead of b*p divide-and-mask steps.
     */
    std::vector<std::uint64_t> _scatter;
};

} // namespace ibp

#endif // IBP_CORE_PATTERN_HH
