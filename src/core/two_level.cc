#include "core/two_level.hh"

#include <sstream>

#include "util/logging.hh"

namespace ibp {

void
TwoLevelConfig::validate() const
{
    pattern.validate();
    table.validate();
    if (historySharing < 2 || historySharing > 32)
        fatal("history sharing s=%u outside [2, 32]", historySharing);
    if (confidenceBits < 1 || confidenceBits > 8)
        fatal("confidence counter width %u outside [1, 8]",
              confidenceBits);
}

std::string
TwoLevelConfig::describe() const
{
    std::ostringstream out;
    out << "twolevel[" << pattern.describe();
    if (historySharing != 32)
        out << ",s=" << historySharing;
    out << ',' << table.describe();
    if (!hysteresis)
        out << ",no2bc";
    if (includeConditionalTargets)
        out << ",condhist";
    if (historyElement == HistoryElement::TargetAndAddress)
        out << ",addrhist";
    out << ']';
    return out.str();
}

TwoLevelPredictor::TwoLevelPredictor(const TwoLevelConfig &config)
    : _config(config),
      _builder(config.pattern),
      _history(config.pattern.pathLength, config.historySharing),
      _table(makeTable(config.table,
                       EntryCounterSpec{config.confidenceBits, 2}))
{
    _config.validate();
}

Key
TwoLevelPredictor::currentKey(Addr pc)
{
    if (_cacheValid && _cachePc == pc)
        return _cacheKey;
    _cacheKey = _builder.buildKey(pc, _history.buffer(pc));
    _cachePc = pc;
    _cacheValid = true;
    return _cacheKey;
}

Prediction
TwoLevelPredictor::predict(Addr pc)
{
    const TableEntry *entry = _table->probe(currentKey(pc));
    if (!entry || !entry->valid)
        return Prediction{};
    return Prediction{true, entry->target,
                      static_cast<int>(entry->confidence.value())};
}

void
TwoLevelPredictor::update(Addr pc, Addr actual)
{
    bool replaced = false;
    TableEntry &entry = _table->access(currentKey(pc), replaced);
    if (replaced || !entry.valid) {
        entry.target = actual;
        entry.valid = true;
    } else if (entry.target == actual) {
        entry.hysteresis.hit();
        entry.confidence.increment();
    } else {
        entry.confidence.decrement();
        if (!_config.hysteresis || entry.hysteresis.miss())
            entry.target = actual;
    }
    pushHistory(pc, actual);
}

void
TwoLevelPredictor::observeConditional(Addr pc, bool taken, Addr target)
{
    // The rejected section 3.3 variant: taken conditional targets
    // enter the history and push indirect targets out of the pattern.
    if (_config.includeConditionalTargets && taken)
        pushHistory(pc, target);
}

void
TwoLevelPredictor::pushHistory(Addr pc, Addr target)
{
    if (_config.historyElement == HistoryElement::TargetAndAddress)
        _history.push(pc, pc);
    _history.push(pc, target);
    invalidateKeyCache();
}

void
TwoLevelPredictor::reset()
{
    _table->reset();
    _history.reset();
    invalidateKeyCache();
}

std::string
TwoLevelPredictor::name() const
{
    return _config.describe();
}

} // namespace ibp
