#include "core/two_level.hh"

#include <sstream>

#include "core/sweep_kernel.hh"
#include "util/logging.hh"

namespace ibp {

void
TwoLevelConfig::validate() const
{
    pattern.validate();
    table.validate();
    if (historySharing < 2 || historySharing > 32)
        fatal("history sharing s=%u outside [2, 32]", historySharing);
    if (confidenceBits < 1 || confidenceBits > 8)
        fatal("confidence counter width %u outside [1, 8]",
              confidenceBits);
}

std::string
TwoLevelConfig::describe() const
{
    std::ostringstream out;
    out << "twolevel[" << pattern.describe();
    if (historySharing != 32)
        out << ",s=" << historySharing;
    out << ',' << table.describe();
    if (!hysteresis)
        out << ",no2bc";
    if (includeConditionalTargets)
        out << ",condhist";
    if (historyElement == HistoryElement::TargetAndAddress)
        out << ",addrhist";
    out << ']';
    return out.str();
}

TwoLevelPredictor::TwoLevelPredictor(const TwoLevelConfig &config)
    : _config(config),
      _builder(config.pattern),
      _history(config.pattern.pathLength, config.historySharing),
      _table(makeTable(config.table,
                       EntryCounterSpec{config.confidenceBits, 2}))
{
    _config.validate();
}

Key
TwoLevelPredictor::currentKey(Addr pc)
{
    // Bound mode: the shared variant memoizes per (history version,
    // pc) - the local cache must not be consulted, pushes no longer
    // run here to invalidate it.
    if (_sweepVariant != nullptr)
        return _sweepVariant->key(pc, *_sweepGroup);
    if (_cacheValid && _cachePc == pc)
        return _cacheKey;
    _cacheKey = _builder.buildKey(pc, _history.buffer(pc));
    _cachePc = pc;
    _cacheValid = true;
    return _cacheKey;
}

bool
TwoLevelPredictor::joinSweepKernel(SweepKernel &kernel)
{
    const SweepGroupSignature signature{
        _config.historySharing,
        _config.historyElement == HistoryElement::TargetAndAddress,
        _config.includeConditionalTargets};
    const SweepKernel::Binding binding =
        kernel.bind(signature, _config.pattern);
    _sweepGroup = binding.group;
    _sweepVariant = binding.variant;
    // State dedup: an equal-configuration column that joined earlier
    // is an identical state machine, so its per-record answers are
    // ours too. Correct because the kernel's drive order follows join
    // order: the primary's owning column predicts (and memoizes)
    // before any replica reads the memo, and the memo survives the
    // primary's update (the version bumps only at commit), so
    // replicas always see the pre-update prediction - exactly what
    // their own table would have produced.
    _sweepPrimary = kernel.dedupe(*this);
    return true;
}

Prediction
TwoLevelPredictor::lookup(Addr pc)
{
    const TableEntry *entry = _table->probe(currentKey(pc));
    if (!entry || !entry->valid)
        return Prediction{};
    return Prediction{true, entry->target,
                      static_cast<int>(entry->confidence.value())};
}

void
TwoLevelPredictor::primeSharedPrediction(Addr pc,
                                         const Prediction &pred)
{
    _predMemo = pred;
    _predMemoVersion = _sweepGroup->version();
    _predMemoPc = pc;
    _predMemoValid = true;
}

Prediction
TwoLevelPredictor::sharedPredict(Addr pc)
{
    if (_predMemoValid && _predMemoPc == pc &&
        _predMemoVersion == _sweepGroup->version()) {
        return _predMemo;
    }
    _predMemo = lookup(pc);
    _predMemoVersion = _sweepGroup->version();
    _predMemoPc = pc;
    _predMemoValid = true;
    return _predMemo;
}

Prediction
TwoLevelPredictor::predict(Addr pc)
{
    if (_sweepPrimary != nullptr)
        return _sweepPrimary->sharedPredict(pc);
    if (_replicated)
        return sharedPredict(pc);
    return lookup(pc);
}

void
TwoLevelPredictor::update(Addr pc, Addr actual)
{
    // Replica mode: the shared state is trained exactly once per
    // record, by the primary's own column.
    if (_sweepPrimary != nullptr)
        return;
    bool replaced = false;
    TableEntry &entry = _table->access(currentKey(pc), replaced);
    if (replaced || !entry.valid) {
        entry.target = actual;
        entry.valid = true;
    } else if (entry.target == actual) {
        entry.hysteresis.hit();
        entry.confidence.increment();
    } else {
        entry.confidence.decrement();
        if (!_config.hysteresis || entry.hysteresis.miss())
            entry.target = actual;
    }
    pushHistory(pc, actual);
}

void
TwoLevelPredictor::observeConditional(Addr pc, bool taken, Addr target)
{
    // The rejected section 3.3 variant: taken conditional targets
    // enter the history and push indirect targets out of the pattern.
    // (Replicas own no history either way: bound mode suppresses the
    // push and the kernel advances the shared group once per branch.)
    if (_sweepPrimary != nullptr)
        return;
    if (_config.includeConditionalTargets && taken)
        pushHistory(pc, target);
}

void
TwoLevelPredictor::pushHistory(Addr pc, Addr target)
{
    // Bound mode: the group history advances once per branch via
    // SweepKernel::commit()/observeConditional(), after every bound
    // predictor consumed the pre-push key - the same order a solo
    // predictor sees (update() reuses the key cached by predict()
    // before pushing).
    if (_sweepGroup != nullptr)
        return;
    if (_config.historyElement == HistoryElement::TargetAndAddress)
        _history.push(pc, pc);
    _history.push(pc, target);
    invalidateKeyCache();
}

void
TwoLevelPredictor::reset()
{
    _table->reset();
    _history.reset();
    invalidateKeyCache();
    _predMemoValid = false;
}

std::string
TwoLevelPredictor::name() const
{
    return _config.describe();
}

} // namespace ibp
