#include "core/cascaded.hh"

#include <sstream>

#include "core/factory.hh"
#include "util/logging.hh"

namespace ibp {

void
CascadedConfig::validate() const
{
    if (stages.empty())
        fatal("cascaded predictor needs at least one stage");
    for (std::size_t i = 1; i < stages.size(); ++i) {
        if (stages[i].pathLength <= stages[i - 1].pathLength)
            fatal("cascade stages must have increasing path lengths");
    }
    for (const auto &stage : stages)
        stage.table.validate();
}

std::string
CascadedConfig::describe() const
{
    std::ostringstream out;
    out << "cascaded[";
    for (std::size_t i = 0; i < stages.size(); ++i) {
        if (i)
            out << ';';
        out << "p=" << stages[i].pathLength << ','
            << stages[i].table.describe();
    }
    if (!filterAllocation)
        out << ";nofilter";
    out << ']';
    return out.str();
}

CascadedConfig
CascadedConfig::classic(std::uint64_t total_entries)
{
    IBP_ASSERT(total_entries >= 4 && total_entries % 4 == 0,
               "cascade budget %llu too small",
               static_cast<unsigned long long>(total_entries));
    CascadedConfig config;
    // A small BTB-like filter stage, a medium and a long stage.
    config.stages = {
        CascadeStage{0, TableSpec::setAssoc(total_entries / 4, 4)},
        CascadeStage{2, TableSpec::setAssoc(total_entries / 4, 4)},
        CascadeStage{6, TableSpec::setAssoc(total_entries / 2, 4)},
    };
    return config;
}

CascadedPredictor::CascadedPredictor(const CascadedConfig &config)
    : _config(config),
      _history(config.stages.empty()
                   ? 0
                   : config.stages.back().pathLength,
               32)
{
    _config.validate();
    for (const auto &stage : _config.stages) {
        PatternSpec spec;
        spec.pathLength = stage.pathLength;
        spec.precision = PrecisionMode::Limited;
        spec.interleave = InterleaveKind::Reverse;
        spec.keyMix = KeyMix::Xor;
        _stages.push_back(
            Stage{PatternBuilder(spec), makeTable(stage.table)});
    }
}

Prediction
CascadedPredictor::predict(Addr pc)
{
    const HistoryBuffer &history = _history.buffer(pc);
    _lastStage = -1;
    Prediction best;
    // The longest stage that hits wins.
    for (std::size_t i = _stages.size(); i-- > 0;) {
        const Key key = _stages[i].builder.buildKey(pc, history);
        const TableEntry *entry = _stages[i].table->probe(key);
        if (entry && entry->valid) {
            best = Prediction{true, entry->target,
                              static_cast<int>(
                                  entry->confidence.value())};
            _lastStage = static_cast<int>(i);
            break;
        }
    }
    return best;
}

void
CascadedPredictor::update(Addr pc, Addr actual)
{
    const HistoryBuffer &history = _history.buffer(pc);

    // Find out which stages hit and whether the overall prediction
    // was correct before mutating anything.
    std::vector<const TableEntry *> hits(_stages.size(), nullptr);
    std::vector<Key> keys(_stages.size());
    int provider = -1;
    for (std::size_t i = 0; i < _stages.size(); ++i) {
        keys[i] = _stages[i].builder.buildKey(pc, history);
        hits[i] = _stages[i].table->probe(keys[i]);
        if (hits[i] && hits[i]->valid)
            provider = static_cast<int>(i);
    }
    const bool provider_correct =
        provider >= 0 && hits[provider]->target == actual;

    for (std::size_t i = 0; i < _stages.size(); ++i) {
        const bool present = hits[i] && hits[i]->valid;
        // Filtered allocation: a longer stage only allocates a new
        // entry when the cascade's current prediction was wrong, so
        // branches the short stages already handle never spread into
        // the long-history tables.
        if (!present && i > 0 && _config.filterAllocation &&
            provider_correct) {
            continue;
        }
        bool replaced = false;
        TableEntry &entry = _stages[i].table->access(keys[i],
                                                     replaced);
        if (replaced || !entry.valid) {
            entry.target = actual;
            entry.valid = true;
        } else if (entry.target == actual) {
            entry.hysteresis.hit();
            entry.confidence.increment();
        } else {
            entry.confidence.decrement();
            if (!_config.hysteresis || entry.hysteresis.miss())
                entry.target = actual;
        }
    }

    _history.push(pc, actual);
}

void
CascadedPredictor::reset()
{
    for (auto &stage : _stages)
        stage.table->reset();
    _history.reset();
    _lastStage = -1;
}

std::string
CascadedPredictor::name() const
{
    return _config.describe();
}

std::uint64_t
CascadedPredictor::tableCapacity() const
{
    std::uint64_t total = 0;
    for (const auto &stage : _stages) {
        if (stage.table->capacity() == 0)
            return 0;
        total += stage.table->capacity();
    }
    return total;
}

std::uint64_t
CascadedPredictor::tableOccupancy() const
{
    std::uint64_t total = 0;
    for (const auto &stage : _stages)
        total += stage.table->occupancy();
    return total;
}

} // namespace ibp
