#include "core/sweep_kernel.hh"

#include <algorithm>

#include "core/two_level.hh"
#include "util/logging.hh"

namespace ibp {

Key
SweepKeyVariant::rebuild(Addr pc, SweepHistoryGroup &group)
{
    Key key;
    if (_incremental) {
        // Global-history incremental mode: the pattern is maintained
        // push-by-push (step()), so the per-branch work is just the
        // address mix.
        key = _builder.keyFromPattern(pc, _pattern);
    } else if (_fast) {
        const std::uint64_t *compressed = group.compressedFor(pc);
        key = _builder.keyFromPattern(
            pc, _builder.assembleFromCompressed(compressed));
    } else {
        // Fold/shift-xor/full-precision/reference-mode recipes keep
        // their own assembly, but over the *shared* buffer - columns
        // with identical specs still collapse onto this one memo.
        key = _builder.buildKey(pc, group.buffer(pc));
    }
    _memoVersion = group._version;
    _memoPc = pc;
    _memoValid = true;
    _memoKey = key;
    return key;
}

const std::uint64_t *
SweepHistoryGroup::compressedFor(Addr pc)
{
    IBP_ASSERT(_cacheEnabled, "compressed-target cache disabled");
    const std::uint32_t set = _history->setId(pc);
    if (_cacheValid && _cacheVersion == _version && _cacheSet == set)
        return _compressed.data();
    const HistoryBuffer &buffer = _history->buffer(pc);
    for (unsigned i = 0; i < _cacheDepth; ++i)
        _compressed[i] =
            bitsRange(buffer.at(i), _cacheLowBit, _cacheBits);
    _cacheVersion = _version;
    _cacheSet = set;
    _cacheValid = true;
    return _compressed.data();
}

bool
SweepKernel::tryJoin(IndirectPredictor &predictor)
{
    IBP_ASSERT(!_finalized, "tryJoin after finalize");
    if (predictor.joinSweepKernel(*this)) {
        ++_joined;
        return true;
    }
    ++_declined;
    return false;
}

SweepKernel::Binding
SweepKernel::bind(const SweepGroupSignature &signature,
                  const PatternSpec &spec)
{
    IBP_ASSERT(!_finalized, "bind after finalize");
    SweepHistoryGroup *group = nullptr;
    for (const auto &candidate : _groups) {
        if (candidate->_signature == signature) {
            group = candidate.get();
            break;
        }
    }
    if (group == nullptr) {
        _groups.push_back(
            std::make_unique<SweepHistoryGroup>(signature));
        group = _groups.back().get();
    }
    group->_maxDepth = std::max(group->_maxDepth, spec.pathLength);
    for (const auto &variant : group->_variants) {
        if (variant->spec() == spec)
            return Binding{group, variant.get()};
    }
    group->_variants.push_back(std::make_unique<SweepKeyVariant>(spec));
    return Binding{group, group->_variants.back().get()};
}

TwoLevelPredictor *
SweepKernel::dedupe(TwoLevelPredictor &predictor)
{
    IBP_ASSERT(!_finalized, "dedupe after finalize");
    for (TwoLevelPredictor *primary : _primaries) {
        if (primary->config() == predictor.config()) {
            ++_deduped;
            primary->_replicated = true;
            return primary;
        }
    }
    _primaries.push_back(&predictor);
    return nullptr;
}

void
SweepKernel::finalize()
{
    IBP_ASSERT(!_finalized, "sweep kernel finalized twice");
    _finalized = true;
    for (const auto &groupPtr : _groups) {
        SweepHistoryGroup &group = *groupPtr;
        group._history = std::make_unique<HistoryRegister>(
            group._maxDepth, group._signature.sharingBits);

        // Shared compressed-target cache parameters: anchor on the
        // first bit-select variant's a, widen to the largest b and
        // deepest p among the variants that share that a. scatterBits
        // consumes exactly popcount(mask) low bits of its input, so
        // the width-_cacheBits compression serves every narrower
        // variant without an explicit mask.
        bool anchored = false;
        for (const auto &variant : group._variants) {
            if (!variant->_builder.fastAssemblyEligible())
                continue;
            const PatternSpec &spec = variant->spec();
            if (!anchored) {
                group._cacheLowBit = spec.lowBit;
                anchored = true;
            }
            if (spec.lowBit != group._cacheLowBit)
                continue;
            group._cacheBits = std::max(group._cacheBits,
                                        spec.resolvedBitsPerTarget());
            group._cacheDepth =
                std::max(group._cacheDepth, spec.pathLength);
        }
        group._cacheEnabled = anchored && group._cacheDepth > 0;
        if (group._cacheEnabled)
            group._compressed.assign(group._cacheDepth, 0);

        for (const auto &variant : group._variants) {
            const PatternSpec &spec = variant->spec();
            variant->_fast =
                group._cacheEnabled &&
                variant->_builder.fastAssemblyEligible() &&
                spec.lowBit == group._cacheLowBit &&
                spec.pathLength <= group._cacheDepth &&
                spec.resolvedBitsPerTarget() <= group._cacheBits;
        }

        // Incremental patterns require a *global* history: a push
        // must advance the one pattern every branch reads. Per-set
        // groups keep the rebuild paths (a push into set A must not
        // disturb set B's pattern). Cold history is all zeros, whose
        // assembled pattern is 0 - the running values start correct.
        if (group._signature.sharingBits >= 32) {
            for (const auto &variant : group._variants) {
                if (!variant->_builder.incrementalAdvanceEligible())
                    continue;
                variant->_incremental = true;
                variant->_pattern = 0;
                group._incremental.push_back(variant.get());
            }
        }
    }
}

} // namespace ibp
