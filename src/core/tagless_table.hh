/**
 * @file
 * Tagless (direct-mapped, untagged) table (section 5.2).
 *
 * The low log2(entries) key bits select a slot; there is no tag, so
 * a lookup simply returns whatever target the slot holds. Distinct
 * patterns mapping to the same slot interfere - usually negatively,
 * but section 5.2.2 shows *positive* interference for long path
 * lengths: many patterns share a target, so an aliased slot is still
 * a better-than-random prediction where a tagged table would declare
 * a miss. Hardware-wise this is the cheapest organisation (no tags,
 * no comparators).
 */

#ifndef IBP_CORE_TAGLESS_TABLE_HH
#define IBP_CORE_TAGLESS_TABLE_HH

#include <vector>

#include "core/table.hh"
#include "util/logging.hh"

namespace ibp {

class TaglessTable : public TargetTable
{
  public:
    explicit TaglessTable(std::uint64_t entries,
                          EntryCounterSpec counters = {})
        : _counters(counters), _storage(entries)
    {
        IBP_ASSERT(entries >= 1 && isPowerOfTwo(entries),
                   "tagless table size %llu not a power of two",
                   static_cast<unsigned long long>(entries));
        _indexBits = floorLog2(entries);
    }

    std::uint64_t
    indexOf(const Key &key) const
    {
        return key.lo & lowMask(_indexBits);
    }

    const TableEntry *
    probe(const Key &key) const override
    {
        const TableEntry &entry = _storage[indexOf(key)];
        return entry.valid ? &entry : nullptr;
    }

    TableEntry &
    access(const Key &key, bool &replaced) override
    {
        TableEntry &entry = _storage[indexOf(key)];
        // Without tags, slot reuse by a different pattern is
        // invisible; only a cold slot counts as a replacement.
        replaced = !entry.valid;
        if (replaced) {
            entry.resetFor(_counters.confidenceBits,
                           _counters.chosenBits);
        }
        return entry;
    }

    std::uint64_t
    occupancy() const override
    {
        std::uint64_t count = 0;
        for (const auto &entry : _storage)
            count += entry.valid ? 1 : 0;
        return count;
    }

    std::uint64_t capacity() const override { return _storage.size(); }

    void
    reset() override
    {
        for (auto &entry : _storage)
            entry = TableEntry{};
    }

    std::string name() const override { return "tagless"; }

  private:
    EntryCounterSpec _counters;
    unsigned _indexBits;
    std::vector<TableEntry> _storage;
};

} // namespace ibp

#endif // IBP_CORE_TAGLESS_TABLE_HH
