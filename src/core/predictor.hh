/**
 * @file
 * The indirect-branch predictor interface.
 *
 * The simulator drives every predictor with the same trace-driven
 * protocol the paper uses for each dynamic indirect branch:
 *
 *   1. predict(pc)      - consult tables/history, produce a target;
 *   2. update(pc, t)    - the branch resolved to t; update tables
 *                         (subject to the 2-bit-counter hysteresis
 *                         rule), confidence counters and history.
 *
 * Conditional branches are offered via observeConditional() so that
 * the Target Cache baseline and the section 3.3 "conditional targets
 * in the history" variant can consume them; most predictors ignore
 * them.
 */

#ifndef IBP_CORE_PREDICTOR_HH
#define IBP_CORE_PREDICTOR_HH

#include <string>

#include "util/bits.hh"

namespace ibp {

class SweepKernel;

/** Outcome of a prediction lookup. */
struct Prediction
{
    /** False when the predictor has no entry for this branch. */
    bool valid = false;
    /** Predicted target (meaningful only when valid). */
    Addr target = 0;
    /**
     * Metaprediction confidence of the entry that produced the
     * target; -1 when there is no prediction. Used by hybrid
     * predictors to choose among components.
     */
    int confidence = -1;

    /** A miss is a wrong target or no prediction at all. */
    bool
    correctFor(Addr actual) const
    {
        return valid && target == actual;
    }
};

class IndirectPredictor
{
  public:
    virtual ~IndirectPredictor() = default;

    /** Predict the target of the indirect branch at @p pc. */
    virtual Prediction predict(Addr pc) = 0;

    /** Commit the resolved target of the branch at @p pc. */
    virtual void update(Addr pc, Addr actual) = 0;

    /** Observe a conditional branch (default: ignore). */
    virtual void
    observeConditional(Addr pc, bool taken, Addr target)
    {
        (void)pc;
        (void)taken;
        (void)target;
    }

    /**
     * True when observeConditional() has any observable effect right
     * now (Target Cache; the section 3.3 conditional-history variant
     * while it still owns its history). The block engine skips
     * conditional records wholesale when no predictor in the
     * traversal consumes them and no shared history group folds them
     * in, so the answer must reflect the *current* binding state -
     * query after joinSweepKernel() offers are done.
     */
    virtual bool consumesConditionals() const { return false; }

    /**
     * Offer this predictor a fused sweep kernel (sweep_kernel.hh):
     * a predictor that accepts delegates its first-level history to
     * the kernel (the simulation loop then calls the kernel's
     * commit/observeConditional instead of per-predictor pushes) and
     * must bind its key recipes via SweepKernel::bind(). Default:
     * decline and keep private history - correct for any family.
     */
    virtual bool
    joinSweepKernel(SweepKernel &kernel)
    {
        (void)kernel;
        return false;
    }

    /** Forget all state (tables, histories, counters). */
    virtual void reset() = 0;

    /** Short configuration description for reports. */
    virtual std::string name() const = 0;

    /** Total second-level entry capacity (0 = unbounded). */
    virtual std::uint64_t tableCapacity() const = 0;

    /** Currently valid second-level entries (table utilisation). */
    virtual std::uint64_t tableOccupancy() const = 0;
};

} // namespace ibp

#endif // IBP_CORE_PREDICTOR_HH
