/**
 * @file
 * Bounded fully-associative table with LRU replacement (section 5.1).
 *
 * Introduces capacity misses: when the working set of history
 * patterns exceeds the table size, the least-recently-used pattern is
 * evicted. probe() does not touch recency; access() moves the entry
 * to the MRU position, matching the paper's trace-driven usage where
 * every lookup is followed by an update of the same key.
 *
 * The LRU order is an intrusive doubly-linked list threaded through
 * a contiguous node pool by 32-bit indices, with a FlatMap from key
 * to pool index — no std::list, no per-entry allocation, and an
 * eviction recycles the victim's node in place. The previous
 * std::list implementation is retained as ReferenceFullyAssocTable
 * (core/reference_tables.hh) and differential tests pin the two
 * bit-identical.
 */

#ifndef IBP_CORE_FULLY_ASSOC_TABLE_HH
#define IBP_CORE_FULLY_ASSOC_TABLE_HH

#include <vector>

#include "core/flat_table.hh"
#include "core/table.hh"
#include "util/logging.hh"

namespace ibp {

class FullyAssocTable : public TargetTable
{
  public:
    FullyAssocTable(std::uint64_t entries, EntryCounterSpec counters = {})
        : _capacity(entries), _counters(counters)
    {
        IBP_ASSERT(entries >= 1, "fully-assoc table needs >= 1 entry");
        IBP_ASSERT(entries < kNil,
                   "fully-assoc capacity %llu exceeds the 32-bit "
                   "node-index space",
                   static_cast<unsigned long long>(entries));
    }

    const TableEntry *
    probe(const Key &key) const override
    {
        // Read-only: recency must not move (see file comment).
        const std::uint32_t *node = _index.find(key);
        return node == nullptr ? nullptr : &_nodes[*node].entry;
    }

    TableEntry &
    access(const Key &key, bool &replaced) override
    {
        if (std::uint32_t *hit = _index.find(key)) {
            moveToFront(*hit);
            replaced = false;
            return _nodes[*hit].entry;
        }
        std::uint32_t node;
        if (_nodes.size() >= _capacity) {
            // Evict the LRU (tail) entry, recycling its node.
            node = _tail;
            unlink(node);
            _index.erase(_nodes[node].key);
        } else {
            node = static_cast<std::uint32_t>(_nodes.size());
            _nodes.emplace_back();
        }
        Node &fresh = _nodes[node];
        fresh.key = key;
        fresh.entry.resetFor(_counters.confidenceBits,
                             _counters.chosenBits);
        linkFront(node);
        bool inserted = false;
        _index.findOrInsert(key, inserted) = node;
        replaced = true;
        return fresh.entry;
    }

    std::uint64_t occupancy() const override { return _nodes.size(); }
    std::uint64_t capacity() const override { return _capacity; }

    void
    reset() override
    {
        _nodes.clear();
        _index.clear();
        _head = kNil;
        _tail = kNil;
    }

    std::string name() const override { return "fullassoc"; }

  private:
    static constexpr std::uint32_t kNil = 0xffffffffu;

    struct Node
    {
        Key key{};
        TableEntry entry{};
        std::uint32_t prev = kNil;
        std::uint32_t next = kNil;
    };

    void
    unlink(std::uint32_t node)
    {
        Node &n = _nodes[node];
        if (n.prev != kNil)
            _nodes[n.prev].next = n.next;
        else
            _head = n.next;
        if (n.next != kNil)
            _nodes[n.next].prev = n.prev;
        else
            _tail = n.prev;
    }

    void
    linkFront(std::uint32_t node)
    {
        Node &n = _nodes[node];
        n.prev = kNil;
        n.next = _head;
        if (_head != kNil)
            _nodes[_head].prev = node;
        _head = node;
        if (_tail == kNil)
            _tail = node;
    }

    void
    moveToFront(std::uint32_t node)
    {
        if (_head == node)
            return;
        unlink(node);
        linkFront(node);
    }

    std::uint64_t _capacity;
    EntryCounterSpec _counters;
    std::vector<Node> _nodes;
    FlatMap<Key, std::uint32_t, KeyHash> _index;
    std::uint32_t _head = kNil;
    std::uint32_t _tail = kNil;
};

} // namespace ibp

#endif // IBP_CORE_FULLY_ASSOC_TABLE_HH
