/**
 * @file
 * Bounded fully-associative table with LRU replacement (section 5.1).
 *
 * Introduces capacity misses: when the working set of history
 * patterns exceeds the table size, the least-recently-used pattern is
 * evicted. probe() does not touch recency; access() moves the entry
 * to the MRU position, matching the paper's trace-driven usage where
 * every lookup is followed by an update of the same key.
 */

#ifndef IBP_CORE_FULLY_ASSOC_TABLE_HH
#define IBP_CORE_FULLY_ASSOC_TABLE_HH

#include <list>
#include <unordered_map>
#include <utility>

#include "core/table.hh"
#include "util/logging.hh"

namespace ibp {

class FullyAssocTable : public TargetTable
{
  public:
    FullyAssocTable(std::uint64_t entries, EntryCounterSpec counters = {})
        : _capacity(entries), _counters(counters)
    {
        IBP_ASSERT(entries >= 1, "fully-assoc table needs >= 1 entry");
    }

    const TableEntry *
    probe(const Key &key) const override
    {
        const auto it = _index.find(key);
        return it == _index.end() ? nullptr : &it->second->second;
    }

    TableEntry &
    access(const Key &key, bool &replaced) override
    {
        const auto it = _index.find(key);
        if (it != _index.end()) {
            // Touch: move to the MRU (front) position.
            _lru.splice(_lru.begin(), _lru, it->second);
            replaced = false;
            return it->second->second;
        }
        if (_lru.size() >= _capacity) {
            // Evict the LRU (back) entry.
            _index.erase(_lru.back().first);
            _lru.pop_back();
        }
        _lru.emplace_front(key, TableEntry{});
        _lru.front().second.resetFor(_counters.confidenceBits,
                                     _counters.chosenBits);
        _index[key] = _lru.begin();
        replaced = true;
        return _lru.front().second;
    }

    std::uint64_t
    occupancy() const override
    {
        return _lru.size();
    }

    std::uint64_t capacity() const override { return _capacity; }

    void
    reset() override
    {
        _lru.clear();
        _index.clear();
    }

    std::string name() const override { return "fullassoc"; }

  private:
    using LruList = std::list<std::pair<Key, TableEntry>>;

    std::uint64_t _capacity;
    EntryCounterSpec _counters;
    LruList _lru;
    std::unordered_map<Key, LruList::iterator, KeyHash> _index;
};

} // namespace ibp

#endif // IBP_CORE_FULLY_ASSOC_TABLE_HH
