#include "core/target_cache.hh"

#include <sstream>

namespace ibp {

std::string
TargetCacheConfig::describe() const
{
    std::ostringstream out;
    out << "targetcache[gshare" << historyBits << ','
        << table.describe();
    if (!hysteresis)
        out << ",no2bc";
    out << ']';
    return out.str();
}

TargetCachePredictor::TargetCachePredictor(
    const TargetCacheConfig &config)
    : _config(config), _table(makeTable(config.table))
{
    if (config.historyBits > 30)
        fatal("target cache history of %u bits exceeds the key",
              config.historyBits);
}

Key
TargetCachePredictor::keyFor(Addr pc) const
{
    // gshare: xor the conditional-outcome history into the low
    // branch-address bits.
    const std::uint64_t addr = (pc >> 2) & lowMask(30);
    return makeExactKey(addr ^
                        (_history & lowMask(_config.historyBits)));
}

Prediction
TargetCachePredictor::predict(Addr pc)
{
    const TableEntry *entry = _table->probe(keyFor(pc));
    if (!entry || !entry->valid)
        return Prediction{};
    return Prediction{true, entry->target,
                      static_cast<int>(entry->confidence.value())};
}

void
TargetCachePredictor::update(Addr pc, Addr actual)
{
    bool replaced = false;
    TableEntry &entry = _table->access(keyFor(pc), replaced);
    if (replaced || !entry.valid) {
        entry.target = actual;
        entry.valid = true;
        return;
    }
    if (entry.target == actual) {
        entry.hysteresis.hit();
        entry.confidence.increment();
        return;
    }
    entry.confidence.decrement();
    if (!_config.hysteresis || entry.hysteresis.miss())
        entry.target = actual;
}

void
TargetCachePredictor::observeConditional(Addr, bool taken, Addr)
{
    _history = (_history << 1) | (taken ? 1u : 0u);
}

void
TargetCachePredictor::reset()
{
    _table->reset();
    _history = 0;
}

std::string
TargetCachePredictor::name() const
{
    return _config.describe();
}

} // namespace ibp
