/**
 * @file
 * Set-associative table with tags and per-set LRU (section 5.2).
 *
 * The low log2(sets) bits of the key select a set; the remaining key
 * bits are stored as the tag. Conflict misses arise when more live
 * patterns index into a set than it has ways. One-way associativity
 * is a direct-mapped tagged table.
 *
 * Alongside the full 64-bit tags the table keeps a one-byte tag
 * digest per way (0 = never-allocated, else 0x80 | 7 hash bits of
 * the tag) in a contiguous side array, FlatMap-style: a probe scans
 * the byte array and only dereferences a 32-byte Way on a digest
 * match, which rejects almost every non-matching way with one cache
 * line per set. Behaviour is identical to the digest-free
 * ReferenceSetAssocTable (core/reference_tables.hh) — the full tag
 * and the valid bit are still what decide a hit.
 */

#ifndef IBP_CORE_SET_ASSOC_TABLE_HH
#define IBP_CORE_SET_ASSOC_TABLE_HH

#include <cstdint>
#include <vector>

#include "core/simd.hh"
#include "core/table.hh"
#include "util/logging.hh"

namespace ibp {

class SetAssocTable final : public TargetTable
{
  public:
    /**
     * @param entries total entry count (power of two);
     * @param ways    associativity (divides entries).
     */
    SetAssocTable(std::uint64_t entries, unsigned ways,
                  EntryCounterSpec counters = {});

    // probe/access/prefetch are defined inline below: the lane
    // engine (sim/simulator.cc) calls them devirtualized in its
    // hottest loops, where inlining lets the compiler overlap the
    // set scans of a dozen independent tables.
    const TableEntry *probe(const Key &key) const override;
    TableEntry &access(const Key &key, bool &replaced) override;
    void prefetch(const Key &key) const override;

    std::uint64_t occupancy() const override;
    std::uint64_t capacity() const override { return _ways * _sets; }
    void reset() override;
    std::string name() const override;

    unsigned ways() const { return _ways; }
    std::uint64_t sets() const { return _sets; }

    /** Set index / tag split, exposed for tests. */
    std::uint64_t indexOf(const Key &key) const;
    std::uint64_t tagOf(const Key &key) const;

  private:
    struct Way
    {
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0;
        TableEntry entry;
    };

    static std::uint8_t digestOf(std::uint64_t tag);

    unsigned _ways;
    std::uint64_t _sets;
    unsigned _indexBits;
    EntryCounterSpec _counters;
    std::vector<Way> _storage; // _sets * _ways, set-major
    /** One-byte tag digest per way, same set-major layout. */
    std::vector<std::uint8_t> _digests;
    std::uint64_t _clock = 0;

    /**
     * Probe-to-access fusion: the simulation protocol is always
     * probe(key) in predict() followed by access(key) in update(),
     * so a probe hit remembers which way it found and the next
     * access consumes the memo instead of rescanning the set. The
     * memo is one-shot (cleared by any access) and revalidated
     * against the live way (valid + tag match) before use, so a
     * stale memo can only fall back to the scan, never misroute.
     * mutable because probe() is const; behaviour-neutral cache.
     */
    mutable bool _memoArmed = false;
    mutable std::uint32_t _memoWay = 0;
    mutable std::uint64_t _memoSet = 0;
    mutable std::uint64_t _memoTag = 0;
};

inline std::uint64_t
SetAssocTable::indexOf(const Key &key) const
{
    return key.lo & lowMask(_indexBits);
}

inline std::uint64_t
SetAssocTable::tagOf(const Key &key) const
{
    // Everything above the index bits participates in the tag. The
    // 128-bit hashed keys of unconstrained predictors fold their high
    // half in so full-precision patterns can also run on small tables.
    return (key.lo >> _indexBits) ^ (key.hi * 0x9e3779b97f4a7c15ULL);
}

inline std::uint8_t
SetAssocTable::digestOf(std::uint64_t tag)
{
    // Seven well-mixed tag bits; the high bit distinguishes every
    // allocated way from the never-allocated zero digest.
    return static_cast<std::uint8_t>(0x80u | (mix64(tag) >> 57));
}

inline void
SetAssocTable::prefetch(const Key &key) const
{
    // One set spans one digest byte run plus up to two cache lines
    // of Way records (32 bytes each); touch the digest line and both
    // ends of the way span so the following probe scan never stalls.
    const std::uint64_t set = indexOf(key);
    IBP_PREFETCH(&_digests[set * _ways]);
    IBP_PREFETCH(&_storage[set * _ways]);
    IBP_PREFETCH(&_storage[set * _ways + (_ways - 1)]);
}

inline const TableEntry *
SetAssocTable::probe(const Key &key) const
{
    const std::uint64_t set = indexOf(key);
    const std::uint64_t tag = tagOf(key);
    const std::uint8_t digest = digestOf(tag);
    const Way *base = &_storage[set * _ways];
    const std::uint8_t *digests = &_digests[set * _ways];
    for (unsigned w = 0; w < _ways; ++w) {
        // Digest-first: a mismatching way is rejected on one byte
        // without loading its Way record at all.
        if (digests[w] != digest)
            continue;
        const Way &way = base[w];
        if (way.entry.valid && way.tag == tag) {
            _memoArmed = true;
            _memoWay = w;
            _memoSet = set;
            _memoTag = tag;
            return &way.entry;
        }
    }
    _memoArmed = false;
    return nullptr;
}

inline TableEntry &
SetAssocTable::access(const Key &key, bool &replaced)
{
    const std::uint64_t set = indexOf(key);
    const std::uint64_t tag = tagOf(key);
    const std::uint8_t digest = digestOf(tag);
    Way *base = &_storage[set * _ways];
    std::uint8_t *digests = &_digests[set * _ways];

    // Fused fast path: the preceding probe() hit and remembered the
    // way; revalidate it (the memo could be stale if an access to
    // this set intervened) and skip the scan. Same clock bump, same
    // lastUse write as the scan's hit path - bit-identical LRU.
    if (_memoArmed) {
        _memoArmed = false;
        if (_memoSet == set && _memoTag == tag) {
            Way &way = _storage[set * _ways + _memoWay];
            if (way.entry.valid && way.tag == tag) {
                ++_clock;
                way.lastUse = _clock;
                replaced = false;
                return way.entry;
            }
        }
    }
    ++_clock;

    Way *victim = &base[0];
    unsigned victim_way = 0;
    for (unsigned w = 0; w < _ways; ++w) {
        Way &way = base[w];
        if (digests[w] == digest && way.entry.valid &&
            way.tag == tag) {
            way.lastUse = _clock;
            replaced = false;
            return way.entry;
        }
        // Prefer an invalid way; otherwise the least recently used.
        if (!way.entry.valid) {
            if (victim->entry.valid || way.lastUse < victim->lastUse) {
                victim = &way;
                victim_way = w;
            }
        } else if (victim->entry.valid &&
                   way.lastUse < victim->lastUse) {
            victim = &way;
            victim_way = w;
        }
    }

    victim->tag = tag;
    victim->lastUse = _clock;
    victim->entry.resetFor(_counters.confidenceBits,
                           _counters.chosenBits);
    digests[victim_way] = digest;
    replaced = true;
    return victim->entry;
}

} // namespace ibp

#endif // IBP_CORE_SET_ASSOC_TABLE_HH
