/**
 * @file
 * Set-associative table with tags and per-set LRU (section 5.2).
 *
 * The low log2(sets) bits of the key select a set; the remaining key
 * bits are stored as the tag. Conflict misses arise when more live
 * patterns index into a set than it has ways. One-way associativity
 * is a direct-mapped tagged table.
 *
 * Alongside the full 64-bit tags the table keeps a one-byte tag
 * digest per way (0 = never-allocated, else 0x80 | 7 hash bits of
 * the tag) in a contiguous side array, FlatMap-style: a probe scans
 * the byte array and only dereferences a 32-byte Way on a digest
 * match, which rejects almost every non-matching way with one cache
 * line per set. Behaviour is identical to the digest-free
 * ReferenceSetAssocTable (core/reference_tables.hh) — the full tag
 * and the valid bit are still what decide a hit.
 */

#ifndef IBP_CORE_SET_ASSOC_TABLE_HH
#define IBP_CORE_SET_ASSOC_TABLE_HH

#include <cstdint>
#include <vector>

#include "core/table.hh"
#include "util/logging.hh"

namespace ibp {

class SetAssocTable : public TargetTable
{
  public:
    /**
     * @param entries total entry count (power of two);
     * @param ways    associativity (divides entries).
     */
    SetAssocTable(std::uint64_t entries, unsigned ways,
                  EntryCounterSpec counters = {});

    const TableEntry *probe(const Key &key) const override;
    TableEntry &access(const Key &key, bool &replaced) override;

    std::uint64_t occupancy() const override;
    std::uint64_t capacity() const override { return _ways * _sets; }
    void reset() override;
    std::string name() const override;

    unsigned ways() const { return _ways; }
    std::uint64_t sets() const { return _sets; }

    /** Set index / tag split, exposed for tests. */
    std::uint64_t indexOf(const Key &key) const;
    std::uint64_t tagOf(const Key &key) const;

  private:
    struct Way
    {
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0;
        TableEntry entry;
    };

    static std::uint8_t digestOf(std::uint64_t tag);

    unsigned _ways;
    std::uint64_t _sets;
    unsigned _indexBits;
    EntryCounterSpec _counters;
    std::vector<Way> _storage; // _sets * _ways, set-major
    /** One-byte tag digest per way, same set-major layout. */
    std::vector<std::uint8_t> _digests;
    std::uint64_t _clock = 0;
};

} // namespace ibp

#endif // IBP_CORE_SET_ASSOC_TABLE_HH
