/**
 * @file
 * Branch target buffer predictors (section 3.1 of the paper).
 *
 * "BTB" caches the most recent target of each indirect branch, keyed
 * by the branch address, and replaces the target on every miss.
 * "BTB-2bc" replaces the target only after two consecutive misses
 * (the two-bit-counter update rule of Calder & Grunwald [CG94]; one
 * hysteresis bit suffices for indirect branches). The paper measures
 * 28.1% average misprediction for the standard BTB and 24.9% for
 * BTB-2bc on unconstrained tables.
 */

#ifndef IBP_CORE_BTB_HH
#define IBP_CORE_BTB_HH

#include <memory>

#include "core/predictor.hh"
#include "core/table_spec.hh"

namespace ibp {

class BtbPredictor final : public IndirectPredictor
{
  public:
    /**
     * @param table      table organisation (unconstrained for the
     *                   paper's section 3 results, bounded otherwise);
     * @param hysteresis true for BTB-2bc update behaviour.
     */
    explicit BtbPredictor(const TableSpec &table = TableSpec::unconstrained(),
                          bool hysteresis = false);

    Prediction predict(Addr pc) override;
    void update(Addr pc, Addr actual) override;
    void reset() override;
    std::string name() const override;

    std::uint64_t tableCapacity() const override
    {
        return _table->capacity();
    }
    std::uint64_t tableOccupancy() const override
    {
        return _table->occupancy();
    }

    bool hysteresis() const { return _hysteresis; }

  private:
    Key keyFor(Addr pc) const;

    TableSpec _spec;
    bool _hysteresis;
    std::unique_ptr<TargetTable> _table;
};

} // namespace ibp

#endif // IBP_CORE_BTB_HH
