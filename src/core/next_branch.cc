#include "core/next_branch.hh"

namespace ibp {

namespace {

PatternSpec
fullPrecisionSpec(unsigned path_length)
{
    PatternSpec spec;
    spec.pathLength = path_length;
    spec.precision = PrecisionMode::Full;
    return spec;
}

} // namespace

NextBranchPredictor::NextBranchPredictor(unsigned path_length,
                                         bool hysteresis)
    : _hysteresis(hysteresis),
      _flat(tableImplementation() == TableImpl::Flat),
      _builder(fullPrecisionSpec(path_length)),
      _history(path_length, 32)
{
}

NextBranchPredictor::Entry &
NextBranchPredictor::findOrInsertEntry(const Key &key, bool &inserted)
{
    if (!_flat) {
        auto [it, emplaced] = _refEntries.try_emplace(key);
        inserted = emplaced;
        return it->second;
    }
    return _entries.findOrInsert(key, inserted);
}

NextBranchPrediction
NextBranchPredictor::predict(Addr pc)
{
    const Key key = _builder.buildKey(pc, _history.buffer(pc));
    const Entry *entry = nullptr;
    if (_flat) {
        entry = _entries.find(key);
    } else {
        const auto it = _refEntries.find(key);
        entry = it == _refEntries.end() ? nullptr : &it->second;
    }
    if (entry == nullptr)
        return NextBranchPrediction{};
    return NextBranchPrediction{true, entry->target, entry->nextPc};
}

void
NextBranchPredictor::update(Addr pc, Addr actual, Addr next_pc)
{
    const Key key = _builder.buildKey(pc, _history.buffer(pc));
    bool inserted = false;
    Entry &entry = findOrInsertEntry(key, inserted);
    if (inserted) {
        entry.target = actual;
        entry.nextPc = next_pc;
    } else if (entry.target == actual && entry.nextPc == next_pc) {
        entry.hysteresis.hit();
    } else if (!_hysteresis || entry.hysteresis.miss()) {
        entry.target = actual;
        entry.nextPc = next_pc;
    }
    _history.push(pc, actual);
}

void
NextBranchPredictor::reset()
{
    _entries.clear();
    _refEntries.clear();
    _history.reset();
}

std::string
NextBranchPredictor::name() const
{
    return "nextbranch[p=" +
           std::to_string(_builder.spec().pathLength) + "]";
}

} // namespace ibp
