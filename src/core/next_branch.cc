#include "core/next_branch.hh"

namespace ibp {

namespace {

PatternSpec
fullPrecisionSpec(unsigned path_length)
{
    PatternSpec spec;
    spec.pathLength = path_length;
    spec.precision = PrecisionMode::Full;
    return spec;
}

} // namespace

NextBranchPredictor::NextBranchPredictor(unsigned path_length,
                                         bool hysteresis)
    : _hysteresis(hysteresis),
      _builder(fullPrecisionSpec(path_length)),
      _history(path_length, 32)
{
}

NextBranchPrediction
NextBranchPredictor::predict(Addr pc)
{
    const Key key = _builder.buildKey(pc, _history.buffer(pc));
    const auto it = _entries.find(key);
    if (it == _entries.end())
        return NextBranchPrediction{};
    return NextBranchPrediction{true, it->second.target,
                                it->second.nextPc};
}

void
NextBranchPredictor::update(Addr pc, Addr actual, Addr next_pc)
{
    const Key key = _builder.buildKey(pc, _history.buffer(pc));
    auto [it, inserted] = _entries.try_emplace(key);
    Entry &entry = it->second;
    if (inserted) {
        entry.target = actual;
        entry.nextPc = next_pc;
    } else if (entry.target == actual && entry.nextPc == next_pc) {
        entry.hysteresis.hit();
    } else if (!_hysteresis || entry.hysteresis.miss()) {
        entry.target = actual;
        entry.nextPc = next_pc;
    }
    _history.push(pc, actual);
}

void
NextBranchPredictor::reset()
{
    _entries.clear();
    _history.reset();
}

std::string
NextBranchPredictor::name() const
{
    return "nextbranch[p=" +
           std::to_string(_builder.spec().pathLength) + "]";
}

} // namespace ibp
