/**
 * @file
 * Runtime SIMD dispatch for the simulation hot path.
 *
 * Every vectorized primitive in the engine — the FlatMap group tag
 * probe, the trace-block kind classifier, the PDEP pattern scatter —
 * routes its level selection through this one module so the whole
 * process answers a single question the same way: how wide may the
 * hot loops go on this machine, under this configuration?
 *
 * The level is resolved once at startup from two inputs:
 *
 *  - hardware: AVX2 via __builtin_cpu_supports (SSE2 is the x86-64
 *    baseline and needs no probe); non-x86 or non-GNU builds compile
 *    the scalar fallbacks only and report Scalar unconditionally;
 *  - the IBP_SIMD environment override: "off"/"scalar" forces the
 *    scalar paths (the differential tests pin them bit-identical to
 *    the vector paths), "sse2" caps at 16-wide, "avx2"/"auto"/unset
 *    pick the widest the CPU supports.
 *
 * Dispatch is data-independent: for a given level every primitive
 * visits slots/records in exactly the scalar order, so results are
 * bit-identical across levels by construction and the tests enforce
 * it. setSimdLevelForTest() lets one process exercise every level.
 */

#ifndef IBP_CORE_SIMD_HH
#define IBP_CORE_SIMD_HH

#include <cstddef>
#include <cstdint>

// One x86 gate for every vector primitive: the intrinsics below need
// both the architecture and a GNU-flavoured compiler (function target
// attributes, __builtin_cpu_supports). MSVC/arm builds take the
// scalar branches and still compile cleanly.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define IBP_X86_SIMD 1
#include <immintrin.h>
#else
#define IBP_X86_SIMD 0
#endif

// Read-prefetch hint for dense forward scans (trace record arrays).
// Compiles to nothing where the builtin is unavailable; callers never
// need their own compiler check.
#if defined(__GNUC__) || defined(__clang__)
#define IBP_PREFETCH(address) __builtin_prefetch((address), 0, 1)
#else
#define IBP_PREFETCH(address) ((void)0)
#endif

namespace ibp {

/** Widest vector path the process may use (ordered by width). */
enum class SimdLevel : std::uint8_t
{
    Scalar = 0,
    Sse2 = 1,
    Avx2 = 2,
};

/** The dispatch level resolved at startup (hardware x IBP_SIMD). */
SimdLevel simdLevel();

/** "scalar" / "sse2" / "avx2". */
const char *simdLevelName(SimdLevel level);

/**
 * Why the process is not running the widest path: "" at full width,
 * else "IBP_SIMD=<value>", "cpu-lacks-avx2" or "non-x86-build"
 * (artifact telemetry, metrics.simd.fallback_reason).
 */
const char *simdFallbackReason();

/**
 * Hardware PDEP availability for the pattern scatter, under the same
 * override: IBP_SIMD=off also forces the portable scatter loop (the
 * two are bit-identical; the override exists so tests and bisects can
 * run the whole engine scalar).
 */
bool simdScatterEnabled();

/**
 * Test hook: force the level in-process. Clamped to what the CPU
 * supports; returns the level actually applied. Not thread-safe —
 * call before spawning simulation workers.
 */
SimdLevel setSimdLevelForTest(SimdLevel level);

namespace simd {

/** One group-scan over 16 or 32 one-byte tags. Bit i of @p matches /
 *  @p empties says tag byte i equals the probe tag / the empty tag
 *  (0). Lane order == memory order, so consumers can replay the
 *  scalar probe sequence exactly with ctz walks. */
struct TagGroup
{
    std::uint32_t matches = 0;
    std::uint32_t empties = 0;
};

/** 32-wide AVX2 tag scan (defined out of line so the target
 *  attribute never leaks into generic translation units). Call only
 *  when simdLevel() == Avx2. */
TagGroup scanTags32(const std::uint8_t *tags, std::uint8_t tag);

/** 16-wide tag scan. SSE2 is the x86-64 baseline, so this inlines
 *  into any caller; elsewhere it is a scalar loop. */
inline TagGroup
scanTags16(const std::uint8_t *tags, std::uint8_t tag)
{
    TagGroup group;
#if IBP_X86_SIMD
    const __m128i bytes =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(tags));
    group.matches = static_cast<std::uint32_t>(_mm_movemask_epi8(
        _mm_cmpeq_epi8(bytes, _mm_set1_epi8(static_cast<char>(tag)))));
    group.empties = static_cast<std::uint32_t>(_mm_movemask_epi8(
        _mm_cmpeq_epi8(bytes, _mm_setzero_si128())));
#else
    for (unsigned i = 0; i < 16; ++i) {
        group.matches |= (tags[i] == tag ? 1u : 0u) << i;
        group.empties |= (tags[i] == 0 ? 1u : 0u) << i;
    }
#endif
    return group;
}

/**
 * Classify a trace meta column (kind | taken<<7 per byte, see
 * trace/trace_mmap.hh): append the index base+i of every record the
 * simulation loop must visit — predicted-indirect kinds (1..3)
 * always, conditionals (kind 0) too when @p includeConditionals.
 * Returns the number of indices written to @p out (capacity >=
 * @p count). Dispatches on simdLevel(); every level emits indices in
 * record order.
 */
std::size_t classifyMeta(const std::uint8_t *meta, std::size_t count,
                         std::uint32_t base, bool includeConditionals,
                         std::uint32_t *out);

} // namespace simd

} // namespace ibp

#endif // IBP_CORE_SIMD_HH
