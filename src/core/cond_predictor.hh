/**
 * @file
 * Conditional-branch predictors.
 *
 * The paper takes conditional predictability as given (97% hit rates
 * per [YP93]) and dedicates all resources to indirect branches; we
 * implement the classic schemes anyway so the section 1 overhead
 * analysis (bench/intro_overhead) can use *measured* conditional
 * rates on the same traces instead of an assumed constant:
 *
 *  - BimodalPredictor: per-address two-bit saturating counters;
 *  - GsharePredictor: global outcome history xored into the index
 *    [McFar93], the design whose indirect-branch analogue is the
 *    Target Cache [CHP97].
 */

#ifndef IBP_CORE_COND_PREDICTOR_HH
#define IBP_CORE_COND_PREDICTOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/bits.hh"
#include "util/sat_counter.hh"

namespace ibp {

/** Taken/not-taken predictor interface. */
class ConditionalPredictor
{
  public:
    virtual ~ConditionalPredictor() = default;

    /** Predict the outcome of the conditional branch at @p pc. */
    virtual bool predictTaken(Addr pc) = 0;

    /** Commit the resolved outcome. */
    virtual void update(Addr pc, bool taken) = 0;

    virtual void reset() = 0;
    virtual std::string name() const = 0;
};

/** Per-address two-bit counters (tagless). */
class BimodalPredictor : public ConditionalPredictor
{
  public:
    explicit BimodalPredictor(std::uint64_t entries = 4096);

    bool predictTaken(Addr pc) override;
    void update(Addr pc, bool taken) override;
    void reset() override;
    std::string name() const override;

  private:
    std::uint64_t indexOf(Addr pc) const;

    unsigned _indexBits;
    std::vector<SatCounter> _counters;
};

/** Global-history gshare with two-bit counters. */
class GsharePredictor : public ConditionalPredictor
{
  public:
    GsharePredictor(unsigned historyBits = 12,
                    std::uint64_t entries = 4096);

    bool predictTaken(Addr pc) override;
    void update(Addr pc, bool taken) override;
    void reset() override;
    std::string name() const override;

    std::uint64_t history() const { return _history; }

  private:
    std::uint64_t indexOf(Addr pc) const;

    unsigned _historyBits;
    unsigned _indexBits;
    std::uint64_t _history = 0;
    std::vector<SatCounter> _counters;
};

} // namespace ibp

#endif // IBP_CORE_COND_PREDICTOR_HH
