/**
 * @file
 * Hybrid indirect branch predictors (section 6 of the paper).
 *
 * A hybrid predictor combines two or more component predictors
 * (typically a short and a long path length: the short one adapts
 * quickly after phase changes, the long one captures longer-range
 * correlations). A metapredictor chooses which component's target to
 * use:
 *
 *  - Confidence (the paper's scheme, section 6.1): every table entry
 *    carries an n-bit saturating counter of its recent prediction
 *    success; the component whose consulted entry has the highest
 *    confidence wins, ties broken by fixed component order, and a
 *    replaced entry restarts at zero confidence.
 *
 *  - Selector: a classic branch-predictor-selection-table (BPST,
 *    McFarling [McFar93]) keyed by branch address, provided for the
 *    comparison the paper alludes to; two components only.
 */

#ifndef IBP_CORE_HYBRID_HH
#define IBP_CORE_HYBRID_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "core/flat_table.hh"
#include "core/predictor.hh"
#include "core/two_level.hh"
#include "util/sat_counter.hh"

namespace ibp {

/** Metaprediction mechanism. */
enum class MetaKind
{
    Confidence,
    Selector,
};

std::string toString(MetaKind kind);

/** Configuration of a hybrid predictor. */
struct HybridConfig
{
    /** Component configurations, in tie-break priority order. */
    std::vector<TwoLevelConfig> components;

    MetaKind meta = MetaKind::Confidence;

    /**
     * Confidence counter width (1..4 tested in the paper; 2 best).
     * Applied uniformly to all components.
     */
    unsigned confidenceBits = 2;

    /**
     * Selector-mode only: entries in the direct-mapped selection
     * table (power of two), or 0 for an unconstrained per-branch map.
     */
    std::uint64_t selectorEntries = 0;

    /** Field-wise equality (content hashing keys on it). */
    bool operator==(const HybridConfig &other) const = default;

    void validate() const;
    std::string describe() const;

    /** Convenience: the paper's usual two-component construction. */
    static HybridConfig twoComponent(const TwoLevelConfig &first,
                                     const TwoLevelConfig &second);
};

class HybridPredictor final : public IndirectPredictor
{
  public:
    explicit HybridPredictor(const HybridConfig &config);

    Prediction predict(Addr pc) override;
    void update(Addr pc, Addr actual) override;
    void observeConditional(Addr pc, bool taken, Addr target) override;
    bool joinSweepKernel(SweepKernel &kernel) override;
    void reset() override;
    std::string name() const override;

    std::uint64_t tableCapacity() const override;
    std::uint64_t tableOccupancy() const override;

    bool
    consumesConditionals() const override
    {
        for (const auto &component : _components) {
            if (component->consumesConditionals())
                return true;
        }
        return false;
    }

    unsigned numComponents() const
    {
        return static_cast<unsigned>(_components.size());
    }

    const HybridConfig &config() const { return _config; }

    /** Component @p i in tie-break priority order (lane engine). */
    TwoLevelPredictor &component(unsigned i) { return *_components[i]; }

    /** Which component the last predict() chose (for diagnostics). */
    int lastChosen() const { return _lastChosen; }

  private:
    SatCounter &selectorCounter(Addr pc);

    HybridConfig _config;
    std::vector<std::unique_ptr<TwoLevelPredictor>> _components;

    // Selector-mode state. The unconstrained per-branch map is a
    // FlatMap: a default-constructed SatCounter is the same 2-bit
    // zero counter the bounded table is filled with. The reference
    // implementation keeps the original node map (_flatSelector is
    // captured at construction from tableImplementation()).
    bool _flatSelector = true;
    std::vector<SatCounter> _selectorTable;
    FlatMap<Addr, SatCounter> _selectorMap;
    std::unordered_map<Addr, SatCounter> _refSelectorMap;

    // predict()/update() pairs share the component predictions.
    bool _cacheValid = false;
    Addr _cachePc = 0;
    std::vector<Prediction> _cachePreds;
    int _lastChosen = -1;
};

} // namespace ibp

#endif // IBP_CORE_HYBRID_HH
