#include "core/btb.hh"

namespace ibp {

BtbPredictor::BtbPredictor(const TableSpec &table, bool hysteresis)
    : _spec(table), _hysteresis(hysteresis), _table(makeTable(table))
{
}

Key
BtbPredictor::keyFor(Addr pc) const
{
    // Instructions are word-aligned; dropping bits 0..1 uses the
    // index bits of bounded tables more effectively.
    return makeExactKey(pc >> 2);
}

Prediction
BtbPredictor::predict(Addr pc)
{
    const TableEntry *entry = _table->probe(keyFor(pc));
    if (!entry || !entry->valid)
        return Prediction{};
    return Prediction{true, entry->target,
                      static_cast<int>(entry->confidence.value())};
}

void
BtbPredictor::update(Addr pc, Addr actual)
{
    bool replaced = false;
    TableEntry &entry = _table->access(keyFor(pc), replaced);
    if (replaced || !entry.valid) {
        entry.target = actual;
        entry.valid = true;
        return;
    }
    if (entry.target == actual) {
        entry.hysteresis.hit();
        entry.confidence.increment();
        return;
    }
    entry.confidence.decrement();
    if (!_hysteresis || entry.hysteresis.miss())
        entry.target = actual;
}

void
BtbPredictor::reset()
{
    _table->reset();
}

std::string
BtbPredictor::name() const
{
    std::string text = _hysteresis ? "btb-2bc" : "btb";
    if (_spec.kind != TableKind::Unconstrained)
        text += "[" + _spec.describe() + "]";
    return text;
}

} // namespace ibp
