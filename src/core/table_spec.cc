#include "core/table_spec.hh"

#include <atomic>
#include <cstdlib>
#include <string_view>

#include "core/fully_assoc_table.hh"
#include "core/reference_tables.hh"
#include "core/set_assoc_table.hh"
#include "core/tagless_table.hh"
#include "core/unconstrained_table.hh"
#include "util/logging.hh"

namespace ibp {

namespace {

TableImpl
initialTableImpl()
{
#ifdef IBP_REFERENCE_TABLES
    TableImpl impl = TableImpl::Reference;
#else
    TableImpl impl = TableImpl::Flat;
#endif
    // The environment wins over the compile-time default, in either
    // direction: IBP_REFERENCE_TABLES=0 re-enables the flat tables
    // even in a reference build.
    if (const char *env = std::getenv("IBP_REFERENCE_TABLES")) {
        const std::string_view value(env);
        impl = (value.empty() || value == "0") ? TableImpl::Flat
                                               : TableImpl::Reference;
    }
    return impl;
}

std::atomic<TableImpl> &
tableImplSlot()
{
    static std::atomic<TableImpl> slot{initialTableImpl()};
    return slot;
}

} // namespace

TableImpl
tableImplementation()
{
    return tableImplSlot().load(std::memory_order_relaxed);
}

void
setTableImplementation(TableImpl impl)
{
    tableImplSlot().store(impl, std::memory_order_relaxed);
}

const char *
tableImplName(TableImpl impl)
{
    return impl == TableImpl::Reference ? "reference" : "flat";
}

const char *
tableImplName()
{
    return tableImplName(tableImplementation());
}

std::string
toString(TableKind kind)
{
    switch (kind) {
      case TableKind::Unconstrained: return "unconstrained";
      case TableKind::FullyAssoc:    return "fullassoc";
      case TableKind::SetAssoc:      return "assoc";
      case TableKind::Tagless:       return "tagless";
    }
    return "?";
}

void
TableSpec::validate() const
{
    if (kind == TableKind::Unconstrained)
        return;
    if (entries == 0)
        fatal("bounded table needs a nonzero entry count");
    if (kind == TableKind::SetAssoc) {
        if (ways == 0 || entries % ways != 0)
            fatal("entries %llu not divisible by ways %u",
                  static_cast<unsigned long long>(entries), ways);
        if (!isPowerOfTwo(entries / ways))
            fatal("set count %llu not a power of two",
                  static_cast<unsigned long long>(entries / ways));
    }
    if (kind == TableKind::Tagless && !isPowerOfTwo(entries))
        fatal("tagless table size %llu not a power of two",
              static_cast<unsigned long long>(entries));
}

std::string
TableSpec::describe() const
{
    if (kind == TableKind::Unconstrained)
        return "unconstrained";
    std::string text = toString(kind);
    if (kind == TableKind::SetAssoc)
        text += std::to_string(ways);
    text += "-" + std::to_string(entries);
    return text;
}

TableSpec
TableSpec::unconstrained()
{
    return TableSpec{TableKind::Unconstrained, 0, 1};
}

TableSpec
TableSpec::fullyAssoc(std::uint64_t entries)
{
    return TableSpec{TableKind::FullyAssoc, entries, 1};
}

TableSpec
TableSpec::setAssoc(std::uint64_t entries, unsigned ways)
{
    return TableSpec{TableKind::SetAssoc, entries, ways};
}

TableSpec
TableSpec::tagless(std::uint64_t entries)
{
    return TableSpec{TableKind::Tagless, entries, 1};
}

std::unique_ptr<TargetTable>
makeTable(const TableSpec &spec, EntryCounterSpec counters)
{
    spec.validate();
    const bool reference =
        tableImplementation() == TableImpl::Reference;
    switch (spec.kind) {
      case TableKind::Unconstrained:
        if (reference) {
            return std::make_unique<ReferenceUnconstrainedTable>(
                counters);
        }
        return std::make_unique<UnconstrainedTable>(counters);
      case TableKind::FullyAssoc:
        if (reference) {
            return std::make_unique<ReferenceFullyAssocTable>(
                spec.entries, counters);
        }
        return std::make_unique<FullyAssocTable>(spec.entries, counters);
      case TableKind::SetAssoc:
        if (reference) {
            return std::make_unique<ReferenceSetAssocTable>(
                spec.entries, spec.ways, counters);
        }
        return std::make_unique<SetAssocTable>(spec.entries, spec.ways,
                                               counters);
      case TableKind::Tagless:
        // Already a flat array; shared by both implementations.
        return std::make_unique<TaglessTable>(spec.entries, counters);
    }
    panic("unreachable table kind");
}

} // namespace ibp
