#include "core/cond_predictor.hh"

#include "util/logging.hh"

namespace ibp {

BimodalPredictor::BimodalPredictor(std::uint64_t entries)
{
    if (!isPowerOfTwo(entries))
        fatal("bimodal table size %llu not a power of two",
              static_cast<unsigned long long>(entries));
    _indexBits = floorLog2(entries);
    // Weakly-taken initial state, the conventional choice.
    _counters.assign(entries, SatCounter(2, 2));
}

std::uint64_t
BimodalPredictor::indexOf(Addr pc) const
{
    return (pc >> 2) & lowMask(_indexBits);
}

bool
BimodalPredictor::predictTaken(Addr pc)
{
    return _counters[indexOf(pc)].isConfident();
}

void
BimodalPredictor::update(Addr pc, bool taken)
{
    SatCounter &counter = _counters[indexOf(pc)];
    if (taken)
        counter.increment();
    else
        counter.decrement();
}

void
BimodalPredictor::reset()
{
    for (auto &counter : _counters)
        counter = SatCounter(2, 2);
}

std::string
BimodalPredictor::name() const
{
    return "bimodal-" + std::to_string(_counters.size());
}

GsharePredictor::GsharePredictor(unsigned history_bits,
                                 std::uint64_t entries)
    : _historyBits(history_bits)
{
    if (!isPowerOfTwo(entries))
        fatal("gshare table size %llu not a power of two",
              static_cast<unsigned long long>(entries));
    if (history_bits > 32)
        fatal("gshare history of %u bits is unreasonable",
              history_bits);
    _indexBits = floorLog2(entries);
    _counters.assign(entries, SatCounter(2, 2));
}

std::uint64_t
GsharePredictor::indexOf(Addr pc) const
{
    return ((pc >> 2) ^ (_history & lowMask(_historyBits))) &
           lowMask(_indexBits);
}

bool
GsharePredictor::predictTaken(Addr pc)
{
    return _counters[indexOf(pc)].isConfident();
}

void
GsharePredictor::update(Addr pc, bool taken)
{
    SatCounter &counter = _counters[indexOf(pc)];
    if (taken)
        counter.increment();
    else
        counter.decrement();
    _history = (_history << 1) | (taken ? 1u : 0u);
}

void
GsharePredictor::reset()
{
    for (auto &counter : _counters)
        counter = SatCounter(2, 2);
    _history = 0;
}

std::string
GsharePredictor::name() const
{
    return "gshare" + std::to_string(_historyBits) + "-" +
           std::to_string(_counters.size());
}

} // namespace ibp
