/**
 * @file
 * Convenience constructors and a textual predictor-spec parser.
 *
 * The "paper defaults" follow the choices the paper converges on:
 * global history (s=31), per-address tables (h=2), bit-select
 * compression from bit 2 with the largest b such that b*p <= 24,
 * reverse interleaving, xor key mixing, and the two-bit-counter
 * update rule.
 *
 * The spec parser understands strings such as:
 *
 *   btb
 *   btb2bc
 *   twolevel:p=3,table=assoc4:1024
 *   twolevel:p=8,s=32,h=2,precision=full,table=unconstrained
 *   twolevel:p=5,table=tagless:4096,interleave=concat,mix=concat
 *   hybrid:p1=3,p2=7,table=assoc2:2048,conf=2
 *
 * which the explore_predictors example and tests use.
 */

#ifndef IBP_CORE_FACTORY_HH
#define IBP_CORE_FACTORY_HH

#include <memory>
#include <string>

#include "robust/error.hh"

#include "core/btb.hh"
#include "core/hybrid.hh"
#include "core/two_level.hh"

namespace ibp {

/** A two-level config with the paper's converged defaults. */
TwoLevelConfig paperTwoLevel(unsigned pathLength, const TableSpec &table);

/** Unconstrained full-precision config (section 3 experiments). */
TwoLevelConfig unconstrainedTwoLevel(unsigned pathLength,
                                     unsigned historySharing = 32,
                                     unsigned tableSharing = 2);

/**
 * The paper's two-component hybrid: components share the organisation
 * of @p componentTable (each component gets its own table of that
 * size, so total capacity is twice the component size).
 */
HybridConfig paperHybrid(unsigned firstPath, unsigned secondPath,
                         const TableSpec &componentTable);

/**
 * Parse a textual predictor spec; throws RunException (a permanent
 * RunError) on bad syntax so a sweep can fail just the offending
 * cell. Use tryMakePredictorFromSpec for an explicit Result.
 */
std::unique_ptr<IndirectPredictor>
makePredictorFromSpec(const std::string &spec);

/** Non-throwing wrapper around makePredictorFromSpec. */
Result<std::unique_ptr<IndirectPredictor>>
tryMakePredictorFromSpec(const std::string &spec);

/** Parse a table spec like "assoc4:1024", "tagless:512",
 * "fullassoc:256" or "unconstrained"; throws RunException on bad
 * syntax. */
TableSpec parseTableSpec(const std::string &text);

} // namespace ibp

#endif // IBP_CORE_FACTORY_HH
