#include "core/factory.hh"

#include <algorithm>
#include <charconv>
#include <cstdlib>
#include <string_view>
#include <utility>
#include <vector>

#include "robust/error.hh"

namespace ibp {
namespace {

/** Bad specs are recoverable: a sweep cell whose factory rejects its
 * spec must fail that cell, not the process. */
[[noreturn]] void
badSpec(const std::string &message)
{
    throw RunException(RunError::permanent(message));
}

} // namespace
} // namespace ibp

namespace ibp {

TwoLevelConfig
paperTwoLevel(unsigned pathLength, const TableSpec &table)
{
    TwoLevelConfig config;
    config.pattern.pathLength = pathLength;
    config.pattern.precision = PrecisionMode::Limited;
    config.pattern.bitsPerTarget = 0; // auto: b*p <= 24
    config.pattern.lowBit = 2;
    config.pattern.compressor = CompressorKind::BitSelect;
    config.pattern.interleave = InterleaveKind::Reverse;
    config.pattern.keyMix = KeyMix::Xor;
    config.pattern.tableSharing = 2;
    config.historySharing = 32;
    config.table = table;
    config.hysteresis = true;
    return config;
}

TwoLevelConfig
unconstrainedTwoLevel(unsigned pathLength, unsigned historySharing,
                      unsigned tableSharing)
{
    TwoLevelConfig config;
    config.pattern.pathLength = pathLength;
    config.pattern.precision = PrecisionMode::Full;
    config.pattern.tableSharing = tableSharing;
    config.historySharing = historySharing;
    config.table = TableSpec::unconstrained();
    config.hysteresis = true;
    return config;
}

HybridConfig
paperHybrid(unsigned firstPath, unsigned secondPath,
            const TableSpec &componentTable)
{
    return HybridConfig::twoComponent(
        paperTwoLevel(firstPath, componentTable),
        paperTwoLevel(secondPath, componentTable));
}

TableSpec
parseTableSpec(const std::string &text)
{
    if (text == "unconstrained")
        return TableSpec::unconstrained();

    const auto colon = text.find(':');
    if (colon == std::string::npos)
        badSpec("table spec '" + text + "': expected kind:entries");
    const std::string kind = text.substr(0, colon);
    const std::uint64_t entries =
        std::strtoull(text.c_str() + colon + 1, nullptr, 10);
    if (entries == 0)
        badSpec("table spec '" + text + "': bad entry count");

    if (kind == "fullassoc")
        return TableSpec::fullyAssoc(entries);
    if (kind == "tagless")
        return TableSpec::tagless(entries);
    if (kind.rfind("assoc", 0) == 0) {
        const unsigned ways = static_cast<unsigned>(
            std::strtoul(kind.c_str() + 5, nullptr, 10));
        if (ways == 0)
            badSpec("table spec '" + text + "': bad associativity");
        return TableSpec::setAssoc(entries, ways);
    }
    badSpec("table spec '" + text + "': unknown kind '" + kind +
            "'");
}

namespace {

/**
 * Predictor-spec options as a small sorted vector of string_view
 * pairs into the spec text. Sweeps construct thousands of predictors
 * from specs; the previous std::map<std::string, std::string> paid a
 * node allocation plus a string copy per option per construction,
 * all for lookups over a handful of keys. The views stay valid as
 * long as the spec string a SpecOptions was parsed from (the caller
 * keeps it alive for the whole construction).
 */
class SpecOptions
{
  public:
    SpecOptions() = default;

    explicit SpecOptions(std::string_view text)
    {
        while (!text.empty()) {
            const auto comma = text.find(',');
            const std::string_view item = text.substr(0, comma);
            text = comma == std::string_view::npos
                       ? std::string_view{}
                       : text.substr(comma + 1);
            if (item.empty())
                continue;
            const auto eq = item.find('=');
            if (eq == std::string_view::npos) {
                badSpec("predictor option '" + std::string(item) +
                        "': expected key=value");
            }
            set(item.substr(0, eq), item.substr(eq + 1));
        }
    }

    /** Insert or overwrite (last assignment wins, like map[]=). */
    void
    set(std::string_view key, std::string_view value)
    {
        const auto it = lowerBound(key);
        if (it != _entries.end() && it->first == key)
            it->second = value;
        else
            _entries.insert(it, {key, value});
    }

    const std::string_view *
    find(std::string_view key) const
    {
        const auto it = lowerBound(key);
        if (it == _entries.end() || it->first != key)
            return nullptr;
        return &it->second;
    }

    std::string_view
    get(std::string_view key, std::string_view fallback) const
    {
        const std::string_view *value = find(key);
        return value == nullptr ? fallback : *value;
    }

  private:
    using Entry = std::pair<std::string_view, std::string_view>;

    std::vector<Entry>::iterator
    lowerBound(std::string_view key)
    {
        return std::lower_bound(
            _entries.begin(), _entries.end(), key,
            [](const Entry &entry, std::string_view probe) {
                return entry.first < probe;
            });
    }

    std::vector<Entry>::const_iterator
    lowerBound(std::string_view key) const
    {
        return std::lower_bound(
            _entries.begin(), _entries.end(), key,
            [](const Entry &entry, std::string_view probe) {
                return entry.first < probe;
            });
    }

    std::vector<Entry> _entries; // sorted by key
};

unsigned
toUnsigned(const SpecOptions &options, std::string_view key,
           unsigned fallback)
{
    const std::string_view *value = options.find(key);
    if (value == nullptr)
        return fallback;
    unsigned parsed = 0;
    std::from_chars(value->data(), value->data() + value->size(),
                    parsed);
    return parsed;
}

std::string_view
toText(const SpecOptions &options, std::string_view key,
       std::string_view fallback)
{
    return options.get(key, fallback);
}

InterleaveKind
parseInterleave(std::string_view name)
{
    if (name == "concat")   return InterleaveKind::Concat;
    if (name == "straight") return InterleaveKind::Straight;
    if (name == "reverse")  return InterleaveKind::Reverse;
    if (name == "pingpong") return InterleaveKind::PingPong;
    badSpec("unknown interleave kind '" + std::string(name) + "'");
}

CompressorKind
parseCompressor(std::string_view name)
{
    if (name == "select")   return CompressorKind::BitSelect;
    if (name == "fold")     return CompressorKind::FoldXor;
    if (name == "shiftxor") return CompressorKind::ShiftXor;
    badSpec("unknown compressor kind '" + std::string(name) + "'");
}

TwoLevelConfig
twoLevelFromOptions(const SpecOptions &options)
{
    const std::string table_text(
        toText(options, "table", "unconstrained"));
    const std::string_view precision =
        toText(options, "precision",
               table_text == "unconstrained" ? "full" : "limited");

    TwoLevelConfig config;
    if (precision == "full") {
        config = unconstrainedTwoLevel(toUnsigned(options, "p", 3),
                                       toUnsigned(options, "s", 32),
                                       toUnsigned(options, "h", 2));
        config.table = parseTableSpec(table_text);
    } else {
        config = paperTwoLevel(toUnsigned(options, "p", 3),
                               parseTableSpec(table_text));
        config.historySharing = toUnsigned(options, "s", 32);
        config.pattern.tableSharing = toUnsigned(options, "h", 2);
        config.pattern.bitsPerTarget = toUnsigned(options, "b", 0);
        config.pattern.lowBit = toUnsigned(options, "a", 2);
        config.pattern.interleave =
            parseInterleave(toText(options, "interleave", "reverse"));
        config.pattern.compressor =
            parseCompressor(toText(options, "compressor", "select"));
        config.pattern.keyMix = toText(options, "mix", "xor") == "xor"
                                    ? KeyMix::Xor
                                    : KeyMix::Concat;
    }
    config.hysteresis = toUnsigned(options, "2bc", 1) != 0;
    config.confidenceBits = toUnsigned(options, "conf", 2);
    return config;
}

} // namespace

std::unique_ptr<IndirectPredictor>
makePredictorFromSpec(const std::string &spec)
{
    // The SpecOptions views point into `spec`, which outlives every
    // use below (the configs copy what they keep).
    const auto colon = spec.find(':');
    const std::string_view head =
        std::string_view(spec).substr(0, colon);
    const SpecOptions options(
        colon == std::string::npos
            ? std::string_view{}
            : std::string_view(spec).substr(colon + 1));

    if (head == "btb" || head == "btb2bc") {
        const TableSpec table = parseTableSpec(
            std::string(toText(options, "table", "unconstrained")));
        return std::make_unique<BtbPredictor>(table, head == "btb2bc");
    }
    if (head == "twolevel") {
        return std::make_unique<TwoLevelPredictor>(
            twoLevelFromOptions(options));
    }
    if (head == "hybrid") {
        SpecOptions first = options;
        SpecOptions second = options;
        first.set("p", toText(options, "p1", "3"));
        second.set("p", toText(options, "p2", "7"));
        HybridConfig config = HybridConfig::twoComponent(
            twoLevelFromOptions(first), twoLevelFromOptions(second));
        config.confidenceBits = toUnsigned(options, "conf", 2);
        if (toText(options, "meta", "confidence") == "selector")
            config.meta = MetaKind::Selector;
        return std::make_unique<HybridPredictor>(config);
    }
    badSpec("unknown predictor kind '" + std::string(head) +
            "' in spec '" + spec + "'");
}

Result<std::unique_ptr<IndirectPredictor>>
tryMakePredictorFromSpec(const std::string &spec)
{
    try {
        return makePredictorFromSpec(spec);
    } catch (const RunException &exception) {
        return exception.error();
    }
}

} // namespace ibp
