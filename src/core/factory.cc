#include "core/factory.hh"

#include <cstdlib>
#include <map>
#include <sstream>
#include <vector>

#include "robust/error.hh"

namespace ibp {
namespace {

/** Bad specs are recoverable: a sweep cell whose factory rejects its
 * spec must fail that cell, not the process. */
[[noreturn]] void
badSpec(const std::string &message)
{
    throw RunException(RunError::permanent(message));
}

} // namespace
} // namespace ibp

namespace ibp {

TwoLevelConfig
paperTwoLevel(unsigned pathLength, const TableSpec &table)
{
    TwoLevelConfig config;
    config.pattern.pathLength = pathLength;
    config.pattern.precision = PrecisionMode::Limited;
    config.pattern.bitsPerTarget = 0; // auto: b*p <= 24
    config.pattern.lowBit = 2;
    config.pattern.compressor = CompressorKind::BitSelect;
    config.pattern.interleave = InterleaveKind::Reverse;
    config.pattern.keyMix = KeyMix::Xor;
    config.pattern.tableSharing = 2;
    config.historySharing = 32;
    config.table = table;
    config.hysteresis = true;
    return config;
}

TwoLevelConfig
unconstrainedTwoLevel(unsigned pathLength, unsigned historySharing,
                      unsigned tableSharing)
{
    TwoLevelConfig config;
    config.pattern.pathLength = pathLength;
    config.pattern.precision = PrecisionMode::Full;
    config.pattern.tableSharing = tableSharing;
    config.historySharing = historySharing;
    config.table = TableSpec::unconstrained();
    config.hysteresis = true;
    return config;
}

HybridConfig
paperHybrid(unsigned firstPath, unsigned secondPath,
            const TableSpec &componentTable)
{
    return HybridConfig::twoComponent(
        paperTwoLevel(firstPath, componentTable),
        paperTwoLevel(secondPath, componentTable));
}

TableSpec
parseTableSpec(const std::string &text)
{
    if (text == "unconstrained")
        return TableSpec::unconstrained();

    const auto colon = text.find(':');
    if (colon == std::string::npos)
        badSpec("table spec '" + text + "': expected kind:entries");
    const std::string kind = text.substr(0, colon);
    const std::uint64_t entries =
        std::strtoull(text.c_str() + colon + 1, nullptr, 10);
    if (entries == 0)
        badSpec("table spec '" + text + "': bad entry count");

    if (kind == "fullassoc")
        return TableSpec::fullyAssoc(entries);
    if (kind == "tagless")
        return TableSpec::tagless(entries);
    if (kind.rfind("assoc", 0) == 0) {
        const unsigned ways = static_cast<unsigned>(
            std::strtoul(kind.c_str() + 5, nullptr, 10));
        if (ways == 0)
            badSpec("table spec '" + text + "': bad associativity");
        return TableSpec::setAssoc(entries, ways);
    }
    badSpec("table spec '" + text + "': unknown kind '" + kind +
            "'");
}

namespace {

using Options = std::map<std::string, std::string>;

Options
parseOptions(const std::string &text)
{
    Options options;
    std::stringstream stream(text);
    std::string item;
    while (std::getline(stream, item, ',')) {
        if (item.empty())
            continue;
        const auto eq = item.find('=');
        if (eq == std::string::npos)
            badSpec("predictor option '" + item +
                    "': expected key=value");
        options[item.substr(0, eq)] = item.substr(eq + 1);
    }
    return options;
}

unsigned
toUnsigned(const Options &options, const std::string &key,
           unsigned fallback)
{
    const auto it = options.find(key);
    if (it == options.end())
        return fallback;
    return static_cast<unsigned>(
        std::strtoul(it->second.c_str(), nullptr, 10));
}

std::string
toText(const Options &options, const std::string &key,
       const std::string &fallback)
{
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
}

InterleaveKind
parseInterleave(const std::string &name)
{
    if (name == "concat")   return InterleaveKind::Concat;
    if (name == "straight") return InterleaveKind::Straight;
    if (name == "reverse")  return InterleaveKind::Reverse;
    if (name == "pingpong") return InterleaveKind::PingPong;
    badSpec("unknown interleave kind '" + name + "'");
}

CompressorKind
parseCompressor(const std::string &name)
{
    if (name == "select")   return CompressorKind::BitSelect;
    if (name == "fold")     return CompressorKind::FoldXor;
    if (name == "shiftxor") return CompressorKind::ShiftXor;
    badSpec("unknown compressor kind '" + name + "'");
}

TwoLevelConfig
twoLevelFromOptions(const Options &options)
{
    const std::string table_text =
        toText(options, "table", "unconstrained");
    const std::string precision =
        toText(options, "precision",
               table_text == "unconstrained" ? "full" : "limited");

    TwoLevelConfig config;
    if (precision == "full") {
        config = unconstrainedTwoLevel(toUnsigned(options, "p", 3),
                                       toUnsigned(options, "s", 32),
                                       toUnsigned(options, "h", 2));
        config.table = parseTableSpec(table_text);
    } else {
        config = paperTwoLevel(toUnsigned(options, "p", 3),
                               parseTableSpec(table_text));
        config.historySharing = toUnsigned(options, "s", 32);
        config.pattern.tableSharing = toUnsigned(options, "h", 2);
        config.pattern.bitsPerTarget = toUnsigned(options, "b", 0);
        config.pattern.lowBit = toUnsigned(options, "a", 2);
        config.pattern.interleave =
            parseInterleave(toText(options, "interleave", "reverse"));
        config.pattern.compressor =
            parseCompressor(toText(options, "compressor", "select"));
        config.pattern.keyMix = toText(options, "mix", "xor") == "xor"
                                    ? KeyMix::Xor
                                    : KeyMix::Concat;
    }
    config.hysteresis = toUnsigned(options, "2bc", 1) != 0;
    config.confidenceBits = toUnsigned(options, "conf", 2);
    return config;
}

} // namespace

std::unique_ptr<IndirectPredictor>
makePredictorFromSpec(const std::string &spec)
{
    const auto colon = spec.find(':');
    const std::string head = spec.substr(0, colon);
    const Options options = parseOptions(
        colon == std::string::npos ? "" : spec.substr(colon + 1));

    if (head == "btb" || head == "btb2bc") {
        const TableSpec table =
            parseTableSpec(toText(options, "table", "unconstrained"));
        return std::make_unique<BtbPredictor>(table, head == "btb2bc");
    }
    if (head == "twolevel") {
        return std::make_unique<TwoLevelPredictor>(
            twoLevelFromOptions(options));
    }
    if (head == "hybrid") {
        Options first = options;
        Options second = options;
        first["p"] = toText(options, "p1", "3");
        second["p"] = toText(options, "p2", "7");
        HybridConfig config = HybridConfig::twoComponent(
            twoLevelFromOptions(first), twoLevelFromOptions(second));
        config.confidenceBits = toUnsigned(options, "conf", 2);
        if (toText(options, "meta", "confidence") == "selector")
            config.meta = MetaKind::Selector;
        return std::make_unique<HybridPredictor>(config);
    }
    badSpec("unknown predictor kind '" + head + "' in spec '" +
            spec + "'");
}

Result<std::unique_ptr<IndirectPredictor>>
tryMakePredictorFromSpec(const std::string &spec)
{
    try {
        return makePredictorFromSpec(spec);
    } catch (const RunException &exception) {
        return exception.error();
    }
}

} // namespace ibp
