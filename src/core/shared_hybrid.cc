#include "core/shared_hybrid.hh"

#include <algorithm>
#include <sstream>

#include "util/logging.hh"

namespace ibp {

void
SharedHybridConfig::validate() const
{
    if (pathLengths.size() < 2)
        fatal("shared hybrid needs >= 2 components");
    if (ways == 0 || entries % ways != 0 ||
        !isPowerOfTwo(entries / ways))
        fatal("shared hybrid table %llu/%u is malformed",
              static_cast<unsigned long long>(entries), ways);
}

std::string
SharedHybridConfig::describe() const
{
    std::ostringstream out;
    out << "sharedhybrid[p=";
    for (std::size_t i = 0; i < pathLengths.size(); ++i) {
        if (i)
            out << '.';
        out << pathLengths[i];
    }
    out << ",assoc" << ways << '-' << entries << ",chosen"
        << chosenBits << ']';
    return out.str();
}

SharedHybridPredictor::SharedHybridPredictor(
    const SharedHybridConfig &config)
    : _config(config),
      _history(*std::max_element(config.pathLengths.begin(),
                                 config.pathLengths.end()),
               32)
{
    _config.validate();
    for (unsigned p : _config.pathLengths) {
        PatternSpec spec;
        spec.pathLength = p;
        spec.interleave = InterleaveKind::Reverse;
        spec.keyMix = KeyMix::Xor;
        _builders.emplace_back(spec);
    }
    _sets = _config.entries / _config.ways;
    _indexBits = floorLog2(_sets);
    _storage.resize(_config.entries);
    for (auto &way : _storage) {
        way.confidence = SatCounter(_config.confidenceBits);
        way.chosen = SatCounter(_config.chosenBits);
    }
}

std::uint64_t
SharedHybridPredictor::indexOf(std::uint64_t key) const
{
    return key & lowMask(_indexBits);
}

std::uint64_t
SharedHybridPredictor::tagOf(std::uint64_t key) const
{
    return key >> _indexBits;
}

SharedHybridPredictor::Way *
SharedHybridPredictor::find(std::uint64_t key)
{
    Way *base = &_storage[indexOf(key) * _config.ways];
    const std::uint64_t tag = tagOf(key);
    for (unsigned w = 0; w < _config.ways; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return &base[w];
    }
    return nullptr;
}

SharedHybridPredictor::Way &
SharedHybridPredictor::victimFor(std::uint64_t key)
{
    Way *base = &_storage[indexOf(key) * _config.ways];
    // Invalid first, then unchosen (recuperable), then LRU.
    Way *victim = &base[0];
    auto score = [](const Way &way) {
        if (!way.valid)
            return 0;
        if (way.chosen.value() == 0)
            return 1;
        return 2;
    };
    for (unsigned w = 1; w < _config.ways; ++w) {
        Way &way = base[w];
        if (score(way) < score(*victim) ||
            (score(way) == score(*victim) &&
             way.lastUse < victim->lastUse)) {
            victim = &way;
        }
    }
    return *victim;
}

Prediction
SharedHybridPredictor::predict(Addr pc)
{
    const HistoryBuffer &history = _history.buffer(pc);
    _lastChosen = -1;
    int best_confidence = -1;
    Prediction best;
    for (std::size_t c = 0; c < _builders.size(); ++c) {
        const std::uint64_t key =
            _builders[c].buildKey(pc, history).lo;
        if (const Way *way = find(key)) {
            const int confidence =
                static_cast<int>(way->confidence.value());
            if (confidence > best_confidence) {
                best_confidence = confidence;
                best = Prediction{true, way->target, confidence};
                _lastChosen = static_cast<int>(c);
            }
        }
    }
    return best;
}

void
SharedHybridPredictor::update(Addr pc, Addr actual)
{
    const HistoryBuffer &history = _history.buffer(pc);

    // Which component would the metapredictor have used?
    int used = -1, best_confidence = -1;
    std::vector<std::uint64_t> keys(_builders.size());
    for (std::size_t c = 0; c < _builders.size(); ++c) {
        keys[c] = _builders[c].buildKey(pc, history).lo;
        if (const Way *way = find(keys[c])) {
            const int confidence =
                static_cast<int>(way->confidence.value());
            if (confidence > best_confidence) {
                best_confidence = confidence;
                used = static_cast<int>(c);
            }
        }
    }

    ++_clock;
    for (std::size_t c = 0; c < _builders.size(); ++c) {
        Way *way = find(keys[c]);
        if (!way) {
            Way &victim = victimFor(keys[c]);
            victim.valid = true;
            victim.tag = tagOf(keys[c]);
            victim.target = actual;
            victim.hysteresis.reset();
            victim.confidence = SatCounter(_config.confidenceBits);
            victim.chosen = SatCounter(_config.chosenBits);
            victim.lastUse = _clock;
            continue;
        }
        way->lastUse = _clock;
        // The chosen counter tracks how often this entry's
        // prediction was actually used by the hybrid.
        if (static_cast<int>(c) == used)
            way->chosen.increment();
        else
            way->chosen.decrement();
        if (way->target == actual) {
            way->hysteresis.hit();
            way->confidence.increment();
        } else {
            way->confidence.decrement();
            if (!_config.hysteresis || way->hysteresis.miss())
                way->target = actual;
        }
    }

    _history.push(pc, actual);
}

void
SharedHybridPredictor::reset()
{
    for (auto &way : _storage) {
        way = Way{};
        way.confidence = SatCounter(_config.confidenceBits);
        way.chosen = SatCounter(_config.chosenBits);
    }
    _history.reset();
    _clock = 0;
    _lastChosen = -1;
}

std::string
SharedHybridPredictor::name() const
{
    return _config.describe();
}

std::uint64_t
SharedHybridPredictor::tableOccupancy() const
{
    std::uint64_t count = 0;
    for (const auto &way : _storage)
        count += way.valid ? 1 : 0;
    return count;
}

} // namespace ibp
