/**
 * @file
 * Spec-keyed sweep-column constructors.
 *
 * Before the result store, every bench hand-rolled its SweepColumns
 * as (label, factory-lambda) pairs, so the configuration a column
 * simulated existed only inside an opaque closure. These helpers
 * deduplicate that plumbing: one config value produces BOTH the
 * predictor factory and the canonical content hash
 * (core/spec_codec.hh) that keys the column's cells in the
 * content-addressed result store (sim/result_store.hh). The config
 * is captured by value, so the factory provably constructs exactly
 * what the hash describes.
 */

#ifndef IBP_SIM_SPEC_COLUMNS_HH
#define IBP_SIM_SPEC_COLUMNS_HH

#include <string>

#include "core/cascaded.hh"
#include "core/hybrid.hh"
#include "core/ittage.hh"
#include "core/shared_hybrid.hh"
#include "core/table_spec.hh"
#include "core/two_level.hh"
#include "sim/suite_runner.hh"

namespace ibp {

/** A keyed column simulating a TwoLevelPredictor of @p config. */
SweepColumn specColumn(std::string label,
                       const TwoLevelConfig &config);

/** A keyed column simulating a HybridPredictor of @p config. */
SweepColumn specColumn(std::string label, const HybridConfig &config);

/** A keyed column simulating a SharedHybridPredictor. */
SweepColumn specColumn(std::string label,
                       const SharedHybridConfig &config);

/** A keyed column simulating a CascadedPredictor. */
SweepColumn specColumn(std::string label,
                       const CascadedConfig &config);

/** A keyed column simulating an IttagePredictor. */
SweepColumn specColumn(std::string label, const IttageConfig &config);

/** A keyed column simulating a BtbPredictor (@p hysteresis selects
 *  the 2-bit-counter update rule, i.e. the paper's BTB-2BC). */
SweepColumn btbColumn(std::string label, const TableSpec &table,
                      bool hysteresis);

} // namespace ibp

#endif // IBP_SIM_SPEC_COLUMNS_HH
