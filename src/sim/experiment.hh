/**
 * @file
 * Shared entry point for the bench binaries.
 *
 * Every bench reproduces one figure or table of the paper. This
 * helper standardises their command-line surface:
 *
 *   --csv=DIR     also write each result table to DIR/<slug>.csv
 *   --quick       cut the workload (smaller traces) for smoke runs
 *
 * and prints wall-clock timing so regressions in the simulation
 * engine are visible.
 */

#ifndef IBP_SIM_EXPERIMENT_HH
#define IBP_SIM_EXPERIMENT_HH

#include <functional>
#include <string>
#include <vector>

#include "util/format.hh"

namespace ibp {

/** Parsed bench options plus table sink. */
class ExperimentContext
{
  public:
    ExperimentContext(std::string slug, int argc, char **argv);

    /** True when --quick was passed (benches may shrink sweeps). */
    bool quick() const { return _quick; }

    /** Print a table and, with --csv, persist it. */
    void emit(const ResultTable &table);

    /** Free-form note printed between tables. */
    void note(const std::string &text);

    const std::string &slug() const { return _slug; }

  private:
    std::string _slug;
    std::string _csvDir;
    bool _quick = false;
    unsigned _tableIndex = 0;
};

/**
 * Run an experiment body with standard setup/teardown (timing,
 * failure reporting). Returns the process exit code.
 */
int runExperiment(const std::string &slug, const std::string &title,
                  int argc, char **argv,
                  const std::function<void(ExperimentContext &)> &body);

} // namespace ibp

#endif // IBP_SIM_EXPERIMENT_HH
