/**
 * @file
 * Experiment definitions and the in-process run entry point.
 *
 * Every bench reproduces one figure or table of the paper. An
 * ExperimentDef names it (slug + title) and carries its body; defs
 * are registered in a process-wide registry so both the bench
 * binaries and the ibpd sweep daemon (src/serve) can look an
 * experiment up by slug and run it through the single shared entry
 * point, runExperimentInProcess().
 *
 * runExperimentInProcess() owns the standard setup/teardown - output
 * directories, checkpoint journal, timing, artifact construction,
 * failure reporting - parameterised by ExperimentOptions instead of
 * argc/argv: the CLI front end (bench/common_flags.hh) builds the
 * options from flags, the daemon builds them from a request. The
 * artifact is ALWAYS built (the daemon streams it to clients that
 * never see this process's disk); writing <slug>.json happens only
 * when options.jsonDir is set. A run that finishes with failed cells
 * reports exit code 3 so scripts can distinguish "partial" from
 * "clean" and "dead"; see docs/REPORTING.md.
 */

#ifndef IBP_SIM_EXPERIMENT_HH
#define IBP_SIM_EXPERIMENT_HH

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "report/artifact.hh"
#include "report/run_metrics.hh"
#include "robust/checkpoint.hh"
#include "robust/retry.hh"
#include "sim/suite_runner.hh"
#include "util/format.hh"

namespace ibp {

/**
 * Everything that parameterises one in-process experiment run. The
 * CLI builds it from flags (bench/common_flags.hh), the serve layer
 * from a client request; defaults give a plain interactive run.
 */
struct ExperimentOptions
{
    /** Also write each result table to csvDir/<slug>_<n>.csv. */
    std::string csvDir;
    /** Write the run artifact to jsonDir/<slug>.json. */
    std::string jsonDir;
    /** Cut the workload for smoke runs (benches may shrink sweeps;
     *  the trace scale cut rides on IBP_EVENTS, applied by the CLI
     *  before the run - see applyQuickEventScale()). */
    bool quick = false;
    /** Journal completed cells here and resume after a crash. */
    std::string checkpointPath;
    /** Per-cell retry/deadline policy. */
    RetryPolicy retry = retryPolicyFromEnv();
    /** Print tables, notes and progress to stdout. The daemon runs
     *  with echo=false: clients render the returned artifact. */
    bool echo = true;
    /** Drain flag: while set and true, SuiteRunner stops starting
     *  new cells (started cells finish and are journalled), so the
     *  run can be checkpointed and resumed (docs/SERVICE.md). */
    const std::atomic<bool> *abort = nullptr;
    /** Invoked after every resolved cell (done or failed), from
     *  worker threads; the serve layer streams progress with it. */
    std::function<void()> onCellFinished;
    /** Grid sharding (see RunSession): with shardCount > 1 and an
     *  armed result store, SuiteRunner simulates only this shard's
     *  benchmark partition into the store. */
    unsigned shardIndex = 0;
    unsigned shardCount = 1;
    /** Steal unclaimed foreign cells after finishing the
     *  partition. */
    bool shardSteal = false;
    /** Claim cells in the result store before simulating, so
     *  concurrent shards and overlapping requests compute each cell
     *  exactly once (see RunSession::cellClaims). */
    bool cellClaims = false;
};

/** Parsed experiment state plus table sink, handed to the body. */
class ExperimentContext
{
  public:
    ExperimentContext(std::string slug, std::string title,
                      const ExperimentOptions &options);

    /** True when the run was asked to shrink its sweep. */
    bool quick() const { return _options.quick; }

    /** Print a table (when echoing) and record it for the artifact;
     *  with csvDir, also persist it. */
    void emit(const ResultTable &table);

    /** Free-form note printed between tables. */
    void note(const std::string &text);

    /**
     * Telemetry sink for this run; pass to SuiteRunner::run() so
     * per-cell counters land in the artifact.
     */
    RunMetrics &metrics() { return _metrics; }

    /**
     * The run session benches should hand to SuiteRunner::run():
     * telemetry sink, retry/deadline policy, the optional checkpoint
     * journal, and the serve-layer abort/progress hooks.
     */
    RunSession &session() { return _session; }

    /** Cells restored from the checkpoint journal (0 without one). */
    std::size_t restoredCells() const;

    /** Build the run artifact from everything emitted so far. */
    RunArtifact buildArtifact(double totalSeconds) const;

    const std::string &slug() const { return _slug; }

  private:
    std::string _slug;
    std::string _title;
    ExperimentOptions _options;
    unsigned _tableIndex = 0;
    std::vector<ResultTable> _tables;
    std::vector<std::string> _notes;
    RunMetrics _metrics;
    std::unique_ptr<CheckpointJournal> _journal;
    RunSession _session;
};

/** One registered experiment: its identity and its body. */
struct ExperimentDef
{
    std::string slug;
    std::string title;
    std::function<void(ExperimentContext &)> body;
    /**
     * True when the body is a pure store-keyed sweep grid: every
     * cell flows through the content-addressed result store, so the
     * daemon may fan the job out across worker lanes as shards
     * (docs/SERVICE.md). Leave false for bodies with unkeyed
     * columns or cross-cell state - they still run, just unsharded.
     */
    bool shardable = false;
};

/**
 * Register @p def under its slug (replacing any previous def with
 * the same slug, so tests can re-register). The returned reference
 * is stable for the process lifetime.
 */
const ExperimentDef &registerExperiment(ExperimentDef def);

/** Look up a registered experiment; nullptr when unknown. */
const ExperimentDef *findExperiment(const std::string &slug);

/** Slugs of every registered experiment, sorted. */
std::vector<std::string> experimentSlugs();

/**
 * Re-initialise the registry lock in a fork()ed child: a connection
 * thread of the parent daemon may have held it at the instant of the
 * fork, and the child would deadlock on the copied state the first
 * time it looks an experiment up. The registered defs themselves are
 * plain data and survive the fork intact. Call immediately after
 * fork(), from the child's only thread (worker lanes).
 */
void resetExperimentRegistryAfterFork();

/** Outcome of one in-process experiment run. */
struct ExperimentRunResult
{
    /** 0 clean, 1 fatal error, 3 completed but with failed cells. */
    int exitCode = 0;
    /** The run artifact; null only on a fatal error (exitCode 1). */
    std::shared_ptr<RunArtifact> artifact;
    /** Cells restored from the checkpoint journal at startup. */
    std::size_t restoredCells = 0;
    /** Total wall time of the run. */
    double seconds = 0.0;
    /** Failure text when exitCode == 1. */
    std::string error;
};

/**
 * Run @p def with standard setup/teardown (timing, artifact
 * construction and - with options.jsonDir - persistence, failure
 * reporting). Never calls exit() and never throws: every failure is
 * reported through the result, which is what lets the daemon host
 * runs without dying with them.
 */
ExperimentRunResult
runExperimentInProcess(const ExperimentDef &def,
                       const ExperimentOptions &options);

/**
 * Apply the --quick trace-scale cut: set IBP_EVENTS=0.25 unless the
 * user pinned the scale explicitly. Called by the CLI front end
 * before any trace work; NOT by runExperimentInProcess, because the
 * daemon cannot re-point the process environment per job (it
 * instead admits only jobs whose effective scale matches its own;
 * docs/SERVICE.md).
 */
void applyQuickEventScale();

} // namespace ibp

#endif // IBP_SIM_EXPERIMENT_HH
