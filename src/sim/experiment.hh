/**
 * @file
 * Shared entry point for the bench binaries.
 *
 * Every bench reproduces one figure or table of the paper. This
 * helper standardises their command-line surface:
 *
 *   --csv=DIR          also write each result table to DIR/<slug>.csv
 *   --json=DIR         write a structured run artifact to
 *                      DIR/<slug>.json (tables + telemetry +
 *                      environment manifest; see docs/REPORTING.md)
 *   --quick            cut the workload (smaller traces) for smoke
 *                      runs
 *   --checkpoint=PATH  journal completed cells to PATH and resume
 *                      from it after a crash (docs/ROBUSTNESS.md)
 *   --retries=N        attempts per cell for transient failures
 *   --cell-deadline=S  per-cell wall-clock deadline in seconds
 *   --trace-cache[=DIR] reuse generated traces across runs via the
 *                      on-disk trace cache (default DIR:
 *                      out/trace-cache; docs/PERFORMANCE.md)
 *
 * and prints wall-clock timing so regressions in the simulation
 * engine are visible. With --json, the artifact additionally records
 * per-cell telemetry (RunMetrics) that tools/report_diff can gate
 * against a golden baseline. A run that finishes with failed cells
 * exits with code 3 so scripts can distinguish "partial" from
 * "clean" and "dead".
 */

#ifndef IBP_SIM_EXPERIMENT_HH
#define IBP_SIM_EXPERIMENT_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "report/artifact.hh"
#include "report/run_metrics.hh"
#include "robust/checkpoint.hh"
#include "sim/suite_runner.hh"
#include "util/format.hh"

namespace ibp {

/** Parsed bench options plus table sink. */
class ExperimentContext
{
  public:
    ExperimentContext(std::string slug, std::string title, int argc,
                      char **argv);

    /** True when --quick was passed (benches may shrink sweeps). */
    bool quick() const { return _quick; }

    /** Print a table and, with --csv/--json, persist it. */
    void emit(const ResultTable &table);

    /** Free-form note printed between tables. */
    void note(const std::string &text);

    /**
     * Telemetry sink for this run; pass to SuiteRunner::run() so
     * per-cell counters land in the JSON artifact.
     */
    RunMetrics &metrics() { return _metrics; }

    /**
     * The run session benches should hand to SuiteRunner::run():
     * telemetry sink, retry/deadline policy (--retries,
     * --cell-deadline with environment fallbacks) and, with
     * --checkpoint, the journal for crash/resume.
     */
    RunSession &session() { return _session; }

    /**
     * Write the run artifact (with --json) after the bench body has
     * finished. Called by runExperiment.
     */
    void finish(double totalSeconds);

    const std::string &slug() const { return _slug; }

  private:
    std::string _slug;
    std::string _title;
    std::string _csvDir;
    std::string _jsonDir;
    bool _quick = false;
    unsigned _tableIndex = 0;
    std::vector<ResultTable> _tables;
    std::vector<std::string> _notes;
    RunMetrics _metrics;
    std::unique_ptr<CheckpointJournal> _journal;
    RunSession _session;
};

/**
 * Run an experiment body with standard setup/teardown (timing,
 * artifact writing, failure reporting). Returns the process exit
 * code: 0 clean, 1 fatal error, 3 completed but with failed cells
 * (a partial run; its artifact fails report_diff without
 * --allow-partial).
 */
int runExperiment(const std::string &slug, const std::string &title,
                  int argc, char **argv,
                  const std::function<void(ExperimentContext &)> &body);

} // namespace ibp

#endif // IBP_SIM_EXPERIMENT_HH
