#include "sim/spec_columns.hh"

#include <memory>
#include <utility>

#include "core/btb.hh"
#include "core/spec_codec.hh"

namespace ibp {

SweepColumn
specColumn(std::string label, const TwoLevelConfig &config)
{
    return SweepColumn{std::move(label),
                       [config]() {
                           return std::make_unique<TwoLevelPredictor>(
                               config);
                       },
                       specHash(config)};
}

SweepColumn
specColumn(std::string label, const HybridConfig &config)
{
    return SweepColumn{std::move(label),
                       [config]() {
                           return std::make_unique<HybridPredictor>(
                               config);
                       },
                       specHash(config)};
}

SweepColumn
specColumn(std::string label, const SharedHybridConfig &config)
{
    return SweepColumn{
        std::move(label),
        [config]() {
            return std::make_unique<SharedHybridPredictor>(config);
        },
        specHash(config)};
}

SweepColumn
specColumn(std::string label, const CascadedConfig &config)
{
    return SweepColumn{std::move(label),
                       [config]() {
                           return std::make_unique<CascadedPredictor>(
                               config);
                       },
                       specHash(config)};
}

SweepColumn
specColumn(std::string label, const IttageConfig &config)
{
    return SweepColumn{std::move(label),
                       [config]() {
                           return std::make_unique<IttagePredictor>(
                               config);
                       },
                       specHash(config)};
}

SweepColumn
btbColumn(std::string label, const TableSpec &table, bool hysteresis)
{
    return SweepColumn{std::move(label),
                       [table, hysteresis]() {
                           return std::make_unique<BtbPredictor>(
                               table, hysteresis);
                       },
                       btbSpecHash(table, hysteresis)};
}

} // namespace ibp
