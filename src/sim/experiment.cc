#include "sim/experiment.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <map>
#include <mutex>
#include <new>

#include "core/table_spec.hh"
#include "robust/fault_injection.hh"
#include "synth/benchmark_suite.hh"
#include "util/logging.hh"

namespace ibp {

namespace {

// Output directories are created up front so a long sweep cannot
// fail at the very end on a missing --csv/--json path.
void
ensureDirectory(const std::string &dir, const char *what)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        throw RunException(RunError::permanent(
            std::string(what) + ": cannot create directory '" + dir +
            "': " + ec.message()));
    }
}

/** The process-wide experiment registry. Guarded for the daemon,
 *  whose connection threads look experiments up concurrently;
 *  registration itself happens at startup. std::map nodes are
 *  pointer-stable, so handed-out ExperimentDef pointers survive
 *  later registrations. */
std::mutex &
registryMutex()
{
    static std::mutex mutex;
    return mutex;
}

std::map<std::string, ExperimentDef> &
registrySlot()
{
    static std::map<std::string, ExperimentDef> defs;
    return defs;
}

} // namespace

const ExperimentDef &
registerExperiment(ExperimentDef def)
{
    std::lock_guard<std::mutex> lock(registryMutex());
    auto &slot = registrySlot()[def.slug];
    slot = std::move(def);
    return slot;
}

const ExperimentDef *
findExperiment(const std::string &slug)
{
    std::lock_guard<std::mutex> lock(registryMutex());
    const auto &defs = registrySlot();
    const auto it = defs.find(slug);
    return it == defs.end() ? nullptr : &it->second;
}

std::vector<std::string>
experimentSlugs()
{
    std::lock_guard<std::mutex> lock(registryMutex());
    std::vector<std::string> slugs;
    slugs.reserve(registrySlot().size());
    for (const auto &[slug, def] : registrySlot())
        slugs.push_back(slug);
    return slugs;
}

void
resetExperimentRegistryAfterFork()
{
    new (&registryMutex()) std::mutex();
}

void
applyQuickEventScale()
{
    if (!std::getenv("IBP_EVENTS"))
        setenv("IBP_EVENTS", "0.25", 1);
}

ExperimentContext::ExperimentContext(std::string slug,
                                     std::string title,
                                     const ExperimentOptions &options)
    : _slug(std::move(slug)), _title(std::move(title)),
      _options(options)
{
    if (!_options.csvDir.empty())
        ensureDirectory(_options.csvDir, "csv output");
    if (!_options.jsonDir.empty())
        ensureDirectory(_options.jsonDir, "json output");

    if (!_options.checkpointPath.empty()) {
        // The meta binds the journal to this experiment
        // configuration; eventScale() reflects any quick override
        // applied by the front end, so a quick journal cannot resume
        // a full run.
        CheckpointMeta meta;
        meta.slug = _slug;
        meta.gitSha = buildManifest().gitSha;
        meta.eventScale = eventScale();
        meta.quick = _options.quick;
        auto journal =
            CheckpointJournal::open(_options.checkpointPath, meta);
        if (!journal.ok()) {
            throw RunException(RunError::permanent(
                "checkpoint: " + journal.error().message));
        }
        _journal = std::move(journal).value();
        if (_journal->restoredCells() > 0 && _options.echo) {
            std::printf("(resuming: %zu cells restored from %s)\n\n",
                        _journal->restoredCells(),
                        _options.checkpointPath.c_str());
        }
    }

    _session.metrics = &_metrics;
    _session.checkpoint = _journal.get();
    _session.retry = _options.retry;
    _session.abort = _options.abort;
    _session.onCellFinished = _options.onCellFinished;
    _session.shardIndex = _options.shardIndex;
    _session.shardCount =
        std::max(1u, _options.shardCount);
    _session.shardSteal = _options.shardSteal;
    _session.cellClaims = _options.cellClaims;

    _metrics.recordThreads(simulationThreads());
    _metrics.recordTableImpl(tableImplName());
}

std::size_t
ExperimentContext::restoredCells() const
{
    return _journal ? _journal->restoredCells() : 0;
}

void
ExperimentContext::emit(const ResultTable &table)
{
    if (_options.echo)
        table.print();
    if (!_options.csvDir.empty()) {
        const std::string path = _options.csvDir + "/" + _slug + "_" +
                                 std::to_string(_tableIndex) + ".csv";
        table.writeCsv(path);
        if (_options.echo)
            std::printf("(csv written to %s)\n\n", path.c_str());
    }
    _tables.push_back(table);
    ++_tableIndex;
}

void
ExperimentContext::note(const std::string &text)
{
    if (_options.echo) {
        std::printf("%s\n\n", text.c_str());
        std::fflush(stdout);
    }
    _notes.push_back(text);
}

RunArtifact
ExperimentContext::buildArtifact(double total_seconds) const
{
    RunArtifact artifact;
    artifact.manifest = buildManifest();
    artifact.manifest.slug = _slug;
    artifact.manifest.title = _title;
    artifact.manifest.eventScale = eventScale();
    artifact.manifest.threads = simulationThreads();
    artifact.manifest.quick = _options.quick;
    artifact.tables = _tables;
    artifact.notes = _notes;
    artifact.metrics = _metrics;
    // If no grid run was timed (e.g. a trace-stats bench), fall back
    // to the total wall time so throughput is still meaningful.
    if (artifact.metrics.runSeconds() <= 0.0)
        artifact.metrics.recordRunWindow(total_seconds);
    return artifact;
}

ExperimentRunResult
runExperimentInProcess(const ExperimentDef &def,
                       const ExperimentOptions &options)
{
    ExperimentRunResult out;
    if (options.echo) {
        std::printf("=== %s: %s ===\n", def.slug.c_str(),
                    def.title.c_str());
        std::printf("(threads: %u, event scale: %.2f)\n\n",
                    simulationThreads(), eventScale());
    }
    const auto start = std::chrono::steady_clock::now();
    const auto elapsed = [&start]() {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
            .count();
    };
    try {
        ExperimentContext context(def.slug, def.title, options);
        def.body(context);
        out.restoredCells = context.restoredCells();
        out.artifact = std::make_shared<RunArtifact>(
            context.buildArtifact(elapsed()));

        if (!options.jsonDir.empty()) {
            const std::string path =
                options.jsonDir + "/" + def.slug + ".json";
            // Artifact writes retry like any other cell work: a
            // transient (or injected) failure must not discard a
            // finished sweep.
            const auto written = runWithRetries(
                options.retry, [&](unsigned attempt) {
                    FaultInjector::global().check("artifact", path,
                                                  attempt);
                    const auto result = out.artifact->write(path);
                    if (!result.ok())
                        throw RunException(result.error());
                });
            if (!written.ok()) {
                throw RunException(RunError::permanent(
                    "artifact write failed: " +
                    written.error().describe()));
            }
            if (options.echo)
                std::printf("(json artifact written to %s)\n",
                            path.c_str());
        }

        const std::size_t failed_cells =
            out.artifact->metrics.failureCount();
        if (failed_cells > 0 && options.echo) {
            std::fprintf(stderr,
                         "warning: %zu cell%s failed permanently:\n",
                         failed_cells, failed_cells == 1 ? "" : "s");
            for (const auto &failure :
                 out.artifact->metrics.failures()) {
                std::fprintf(stderr, "  [%s][%s] %s: %s\n",
                             failure.column.c_str(),
                             failure.benchmark.c_str(),
                             failure.kind.c_str(),
                             failure.error.c_str());
            }
        }
        // Exit 3 = completed but partial; distinguishable from both
        // a clean run (0) and a fatal failure (1) in scripts and CI.
        out.exitCode = failed_cells > 0 ? 3 : 0;
    } catch (const std::exception &error) {
        out.error = error.what();
        out.exitCode = 1;
        if (options.echo)
            std::fprintf(stderr, "experiment failed: %s\n",
                         error.what());
    }
    out.seconds = elapsed();
    if (options.echo && out.exitCode != 1) {
        std::printf("[%s done in %.1f s]\n", def.slug.c_str(),
                    out.seconds);
    }
    return out;
}

} // namespace ibp
