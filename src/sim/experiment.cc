#include "sim/experiment.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string_view>

#include "sim/suite_runner.hh"
#include "synth/benchmark_suite.hh"
#include "util/logging.hh"

namespace ibp {

ExperimentContext::ExperimentContext(std::string slug,
                                     std::string title, int argc,
                                     char **argv)
    : _slug(std::move(slug)), _title(std::move(title))
{
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg(argv[i]);
        if (arg == "--quick") {
            _quick = true;
        } else if (arg.rfind("--csv=", 0) == 0) {
            _csvDir = std::string(arg.substr(6));
            if (_csvDir.empty())
                fatal("--csv requires a directory");
        } else if (arg.rfind("--json=", 0) == 0) {
            _jsonDir = std::string(arg.substr(7));
            if (_jsonDir.empty())
                fatal("--json requires a directory");
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: %s [--quick] [--csv=DIR] [--json=DIR]\n",
                argv[0]);
            std::exit(0);
        } else {
            fatal("unknown option '%s'", argv[i]);
        }
    }
    // A quick run also shrinks the synthetic traces unless the user
    // pinned the scale explicitly.
    if (_quick && !std::getenv("IBP_EVENTS"))
        setenv("IBP_EVENTS", "0.25", 1);
    _metrics.recordThreads(simulationThreads());
}

void
ExperimentContext::emit(const ResultTable &table)
{
    table.print();
    if (!_csvDir.empty()) {
        const std::string path = _csvDir + "/" + _slug + "_" +
                                 std::to_string(_tableIndex) + ".csv";
        table.writeCsv(path);
        std::printf("(csv written to %s)\n\n", path.c_str());
    }
    if (!_jsonDir.empty())
        _tables.push_back(table);
    ++_tableIndex;
}

void
ExperimentContext::note(const std::string &text)
{
    std::printf("%s\n\n", text.c_str());
    std::fflush(stdout);
    if (!_jsonDir.empty())
        _notes.push_back(text);
}

void
ExperimentContext::finish(double total_seconds)
{
    if (_jsonDir.empty())
        return;
    // If no grid run was timed (e.g. a trace-stats bench), fall back
    // to the total wall time so throughput is still meaningful.
    if (_metrics.runSeconds() <= 0.0)
        _metrics.recordRunWindow(total_seconds);

    RunArtifact artifact;
    artifact.manifest = buildManifest();
    artifact.manifest.slug = _slug;
    artifact.manifest.title = _title;
    artifact.manifest.eventScale = eventScale();
    artifact.manifest.threads = simulationThreads();
    artifact.manifest.quick = _quick;
    artifact.tables = _tables;
    artifact.notes = _notes;
    artifact.metrics = _metrics;

    const std::string path = _jsonDir + "/" + _slug + ".json";
    artifact.write(path);
    std::printf("(json artifact written to %s)\n", path.c_str());
}

int
runExperiment(const std::string &slug, const std::string &title,
              int argc, char **argv,
              const std::function<void(ExperimentContext &)> &body)
{
    std::printf("=== %s: %s ===\n", slug.c_str(), title.c_str());
    std::printf("(threads: %u, event scale: %.2f)\n\n",
                simulationThreads(), eventScale());
    const auto start = std::chrono::steady_clock::now();
    try {
        ExperimentContext context(slug, title, argc, argv);
        body(context);
        const double seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        context.finish(seconds);
    } catch (const std::exception &error) {
        std::fprintf(stderr, "experiment failed: %s\n", error.what());
        return 1;
    }
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start);
    std::printf("[%s done in %.1f s]\n", slug.c_str(),
                static_cast<double>(elapsed.count()) / 1000.0);
    return 0;
}

} // namespace ibp
