#include "sim/experiment.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <string_view>

#include "core/table_spec.hh"
#include "robust/fault_injection.hh"
#include "robust/retry.hh"
#include "synth/benchmark_suite.hh"
#include "trace/trace_cache.hh"
#include "util/logging.hh"

namespace ibp {

namespace {

// Output directories are created up front so a long sweep cannot
// fail at the very end on a missing --csv/--json path.
void
ensureDirectory(const std::string &dir, const char *flag)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        throw RunException(RunError::permanent(
            std::string(flag) + ": cannot create directory '" + dir +
            "': " + ec.message()));
    }
}

double
parsePositiveNumber(const std::string_view arg,
                    const std::string_view value)
{
    char *end = nullptr;
    const std::string text(value);
    const double parsed = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0' || parsed < 0.0) {
        throw RunException(RunError::permanent(
            "invalid value in '" + std::string(arg) + "'"));
    }
    return parsed;
}

} // namespace

ExperimentContext::ExperimentContext(std::string slug,
                                     std::string title, int argc,
                                     char **argv)
    : _slug(std::move(slug)), _title(std::move(title))
{
    std::string checkpoint_path;
    RetryPolicy retry = retryPolicyFromEnv();
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg(argv[i]);
        if (arg == "--quick") {
            _quick = true;
        } else if (arg.rfind("--csv=", 0) == 0) {
            _csvDir = std::string(arg.substr(6));
            if (_csvDir.empty())
                fatal("--csv requires a directory");
        } else if (arg.rfind("--json=", 0) == 0) {
            _jsonDir = std::string(arg.substr(7));
            if (_jsonDir.empty())
                fatal("--json requires a directory");
        } else if (arg.rfind("--checkpoint=", 0) == 0) {
            checkpoint_path = std::string(arg.substr(13));
            if (checkpoint_path.empty())
                fatal("--checkpoint requires a path");
        } else if (arg.rfind("--retries=", 0) == 0) {
            retry.maxAttempts = static_cast<unsigned>(
                parsePositiveNumber(arg, arg.substr(10)));
            if (retry.maxAttempts == 0)
                retry.maxAttempts = 1;
        } else if (arg.rfind("--cell-deadline=", 0) == 0) {
            retry.cellDeadlineSeconds =
                parsePositiveNumber(arg, arg.substr(16));
        } else if (arg == "--trace-cache") {
            TraceCache::configureGlobal(TraceCache::kDefaultDirectory);
        } else if (arg.rfind("--trace-cache=", 0) == 0) {
            const std::string dir(arg.substr(14));
            if (dir.empty())
                fatal("--trace-cache requires a directory");
            TraceCache::configureGlobal(dir);
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: %s [--quick] [--csv=DIR] [--json=DIR]\n"
                "          [--checkpoint=PATH] [--retries=N]\n"
                "          [--cell-deadline=SECONDS]\n"
                "          [--trace-cache[=DIR]]\n"
                "\n"
                "--trace-cache reuses generated traces across runs "
                "from DIR\n(default %s; also via IBP_TRACE_CACHE).\n",
                argv[0], TraceCache::kDefaultDirectory);
            std::exit(0);
        } else {
            fatal("unknown option '%s'", argv[i]);
        }
    }
    // A quick run also shrinks the synthetic traces unless the user
    // pinned the scale explicitly.
    if (_quick && !std::getenv("IBP_EVENTS"))
        setenv("IBP_EVENTS", "0.25", 1);

    if (!_csvDir.empty())
        ensureDirectory(_csvDir, "--csv");
    if (!_jsonDir.empty())
        ensureDirectory(_jsonDir, "--json");

    if (!checkpoint_path.empty()) {
        // The meta binds the journal to this experiment
        // configuration; eventScale() is read after the --quick
        // override above so a quick journal cannot resume a full run.
        CheckpointMeta meta;
        meta.slug = _slug;
        meta.gitSha = buildManifest().gitSha;
        meta.eventScale = eventScale();
        meta.quick = _quick;
        auto journal = CheckpointJournal::open(checkpoint_path, meta);
        if (!journal.ok()) {
            throw RunException(RunError::permanent(
                "--checkpoint: " + journal.error().message));
        }
        _journal = std::move(journal).value();
        if (_journal->restoredCells() > 0) {
            std::printf("(resuming: %zu cells restored from %s)\n\n",
                        _journal->restoredCells(),
                        checkpoint_path.c_str());
        }
    }

    _session.metrics = &_metrics;
    _session.checkpoint = _journal.get();
    _session.retry = retry;

    _metrics.recordThreads(simulationThreads());
    _metrics.recordTableImpl(tableImplName());
}

void
ExperimentContext::emit(const ResultTable &table)
{
    table.print();
    if (!_csvDir.empty()) {
        const std::string path = _csvDir + "/" + _slug + "_" +
                                 std::to_string(_tableIndex) + ".csv";
        table.writeCsv(path);
        std::printf("(csv written to %s)\n\n", path.c_str());
    }
    if (!_jsonDir.empty())
        _tables.push_back(table);
    ++_tableIndex;
}

void
ExperimentContext::note(const std::string &text)
{
    std::printf("%s\n\n", text.c_str());
    std::fflush(stdout);
    if (!_jsonDir.empty())
        _notes.push_back(text);
}

void
ExperimentContext::finish(double total_seconds)
{
    if (_jsonDir.empty())
        return;
    // If no grid run was timed (e.g. a trace-stats bench), fall back
    // to the total wall time so throughput is still meaningful.
    if (_metrics.runSeconds() <= 0.0)
        _metrics.recordRunWindow(total_seconds);

    RunArtifact artifact;
    artifact.manifest = buildManifest();
    artifact.manifest.slug = _slug;
    artifact.manifest.title = _title;
    artifact.manifest.eventScale = eventScale();
    artifact.manifest.threads = simulationThreads();
    artifact.manifest.quick = _quick;
    artifact.tables = _tables;
    artifact.notes = _notes;
    artifact.metrics = _metrics;

    const std::string path = _jsonDir + "/" + _slug + ".json";
    // Artifact writes retry like any other cell work: a transient
    // (or injected) failure must not discard a finished sweep.
    const auto written =
        runWithRetries(_session.retry, [&](unsigned attempt) {
            FaultInjector::global().check("artifact", path, attempt);
            const auto result = artifact.write(path);
            if (!result.ok())
                throw RunException(result.error());
        });
    if (!written.ok()) {
        throw RunException(RunError::permanent(
            "artifact write failed: " + written.error().describe()));
    }
    std::printf("(json artifact written to %s)\n", path.c_str());
}

int
runExperiment(const std::string &slug, const std::string &title,
              int argc, char **argv,
              const std::function<void(ExperimentContext &)> &body)
{
    std::printf("=== %s: %s ===\n", slug.c_str(), title.c_str());
    std::printf("(threads: %u, event scale: %.2f)\n\n",
                simulationThreads(), eventScale());
    const auto start = std::chrono::steady_clock::now();
    std::size_t failed_cells = 0;
    try {
        ExperimentContext context(slug, title, argc, argv);
        body(context);
        const double seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        context.finish(seconds);
        failed_cells = context.metrics().failureCount();
        if (failed_cells > 0) {
            std::fprintf(stderr,
                         "warning: %zu cell%s failed permanently:\n",
                         failed_cells, failed_cells == 1 ? "" : "s");
            for (const auto &failure : context.metrics().failures()) {
                std::fprintf(stderr, "  [%s][%s] %s: %s\n",
                             failure.column.c_str(),
                             failure.benchmark.c_str(),
                             failure.kind.c_str(),
                             failure.error.c_str());
            }
        }
    } catch (const std::exception &error) {
        std::fprintf(stderr, "experiment failed: %s\n", error.what());
        return 1;
    }
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start);
    std::printf("[%s done in %.1f s]\n", slug.c_str(),
                static_cast<double>(elapsed.count()) / 1000.0);
    // Exit 3 = completed but partial; distinguishable from both a
    // clean run (0) and a fatal failure (1) in scripts and CI.
    return failed_cells > 0 ? 3 : 0;
}

} // namespace ibp
