/**
 * @file
 * Persistent work-stealing executor for grid simulation.
 *
 * SuiteRunner used to spawn a fresh batch of std::threads for every
 * run() call and join them at the end, which (a) paid thread
 * creation per grid, (b) serialized trace acquisition against
 * simulation, and (c) bounded a grid's wall clock by its largest
 * benchmark group. This executor replaces that: ONE process-wide
 * pool, sized by simulationThreads(), with a per-worker deque of
 * tasks. A worker pops its own deque LIFO (so a split-off half of a
 * fused sweep chunk stays cache-warm) and steals FIFO from any other
 * worker when its own deque runs dry, so a single huge benchmark
 * group no longer serializes the tail of a grid.
 *
 * Tasks are grouped into Batches: a Batch counts the tasks spawned
 * into it and wait() blocks until all of them finished. Work that
 * becomes runnable later (a sweep group waiting for its trace) is
 * accounted with defer()/spawnDeferred()/cancelDeferred(), so a
 * wait()ing caller cannot race past a group whose trace has not
 * landed yet.
 *
 * Degradation: if no worker thread could be created (resource
 * pressure, exotic platforms), spawn() runs the task inline on the
 * calling thread - the executor then behaves exactly like the serial
 * fallback the old spawn-per-run scheduler had.
 *
 * Thread-safety: ensureWorkers() must not run concurrently with
 * itself; SuiteRunner calls it from the (single) driving thread
 * only. Everything else is safe to call from any thread, including
 * pool workers (tasks may spawn further tasks into their batch).
 */

#ifndef IBP_SIM_EXECUTOR_HH
#define IBP_SIM_EXECUTOR_HH

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

namespace ibp {

class Executor
{
  public:
    /** Hard cap on pool size (IBP_THREADS beyond this is clamped). */
    static constexpr unsigned kMaxWorkers = 256;

    /**
     * Tracks a set of related tasks so the owner can wait for all of
     * them. Destroying a Batch waits; a Batch must outlive every
     * task spawned into it.
     */
    class Batch
    {
      public:
        explicit Batch(Executor &executor) : _executor(executor) {}
        ~Batch() { wait(); }
        Batch(const Batch &) = delete;
        Batch &operator=(const Batch &) = delete;

        /** Enqueue @p fn (inline when the pool has no workers). */
        void spawn(std::function<void()> fn);

        /**
         * Reserve one unit of not-yet-spawnable work. wait() blocks
         * until it is either spawnDeferred()'d and finishes, or
         * cancelDeferred()'d.
         */
        void defer();

        /** Enqueue work reserved by a matching defer(). */
        void spawnDeferred(std::function<void()> fn);

        /** Release a defer() whose work will never materialise. */
        void cancelDeferred();

        /** Block until every spawned/deferred task resolved. */
        void wait();

      private:
        friend class Executor;
        void finish();

        Executor &_executor;
        std::atomic<std::size_t> _pending{0};
        std::mutex _mutex;
        std::condition_variable _cv;
    };

    /** The process-wide pool (workers join at process exit). */
    static Executor &global();

    /**
     * Grow or shrink the pool to @p count workers. Shrinking joins
     * the excess threads and migrates their queued tasks; growing
     * that fails mid-way (thread creation error) degrades to
     * whatever was created, with a warning. Worker structs are never
     * freed once published, so concurrent thieves scanning the pool
     * stay safe across resizes. Call from one thread at a time.
     */
    void ensureWorkers(unsigned count);

    /** Workers currently accepting work (0 = inline execution). */
    unsigned workerCount() const
    {
        return _active.load(std::memory_order_acquire);
    }

    /**
     * Worker structs ever published; indexes from
     * currentWorkerIndex() are always < this. Monotonic.
     */
    unsigned publishedWorkers() const
    {
        return _published.load(std::memory_order_acquire);
    }

    /** Workers parked waiting for work right now (approximate). */
    unsigned idleWorkers() const
    {
        return _idle.load(std::memory_order_relaxed);
    }

    /** Pool index of the calling thread, -1 off-pool. */
    static int currentWorkerIndex();

    /**
     * Tasks currently queued or executing, including the transitive
     * children of running tasks (a task that spawns counts its
     * spawn immediately). 0 means the pool is quiescent *right now*;
     * concurrent producers can re-busy it the next instant.
     */
    std::size_t outstandingTasks() const
    {
        return _outstanding.load(std::memory_order_acquire);
    }

    /**
     * Block until the pool is quiescent: every queued task (and
     * every task those tasks spawned) has finished. The caller must
     * have stopped submitting new work itself, but drain() tolerates
     * *other* producers - it simply waits until the pool hits a
     * moment of global idleness. Never tears workers down; the pool
     * is immediately reusable. This is what the daemon's graceful
     * drain runs before checkpointing, and what deterministic bench
     * timing uses to fence preceding warm-up work. Must not be
     * called from inside a pool task (it would wait on itself).
     */
    void drain();

    /**
     * drain() with a timeout: true when the pool reached quiescence
     * within @p timeoutSeconds, false when work was still in flight
     * when the clock ran out.
     */
    bool idleWait(double timeoutSeconds);

    /**
     * Re-initialise the pool in a freshly fork()ed child. The worker
     * threads exist only in the parent, and a parent thread may have
     * held any pool mutex at the instant of the fork, so the child
     * must not touch the inherited state: the published worker
     * structs are deliberately leaked (running their destructors
     * could block on a mutex no thread of this process holds), every
     * synchronisation primitive is re-constructed in place, and the
     * counters reset so the next ensureWorkers() builds a fresh
     * pool. Call immediately after fork(), before any executor use,
     * from the child's only thread (worker lanes, docs/SERVICE.md).
     */
    void resetAfterFork();

    ~Executor();

  private:
    struct Task
    {
        std::function<void()> fn;
        Batch *batch = nullptr;
    };

    struct Worker
    {
        std::mutex mutex;
        std::deque<Task> queue;
        std::thread thread;
        unsigned index = 0;
    };

    Executor();

    void enqueue(Task task);
    bool takeTask(unsigned self, Task &out);
    void workerLoop(unsigned index);
    void runTask(Task &task);
    void wake();

    /** Slots are published once and never freed (see ensureWorkers). */
    std::array<std::unique_ptr<Worker>, kMaxWorkers> _workers;
    std::atomic<unsigned> _published{0};
    std::atomic<unsigned> _active{0};
    std::atomic<unsigned> _idle{0};
    std::atomic<unsigned> _rr{0};
    std::atomic<bool> _stopping{false};

    /** Queued-or-running task count backing drain()/idleWait(). */
    std::atomic<std::size_t> _outstanding{0};
    std::mutex _drainMutex;
    std::condition_variable _drainCv;

    /** Pid that constructed the pool; a fork()ed child (death
     *  tests) inherits the object but none of the threads, so its
     *  destructor must not join (see ~Executor). */
    long _ownerPid = 0;

    /** Serializes ensureWorkers() against the destructor. */
    std::mutex _resizeMutex;

    /**
     * Sleep coordination: a worker that found no work re-reads
     * _sleepEpoch under the mutex and sleeps only if no enqueue
     * happened since it started scanning (no missed wakeups).
     */
    std::mutex _sleepMutex;
    std::condition_variable _sleepCv;
    std::uint64_t _sleepEpoch = 0;
};

} // namespace ibp

#endif // IBP_SIM_EXECUTOR_HH
