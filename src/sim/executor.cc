#include "sim/executor.hh"

#include <algorithm>
#include <chrono>
#include <new>
#include <system_error>
#include <unistd.h>
#include <utility>
#include <vector>

#include "util/logging.hh"

namespace ibp {

namespace {

/** Pool index of this thread; -1 on threads the pool does not own. */
thread_local int tlWorkerIndex = -1;

} // namespace

int
Executor::currentWorkerIndex()
{
    return tlWorkerIndex;
}

Executor::Executor() : _ownerPid(static_cast<long>(::getpid())) {}

Executor &
Executor::global()
{
    // Function-local static: constructed on first use, destroyed
    // (joining all workers) at static destruction after main.
    static Executor executor;
    return executor;
}

void
Executor::wake()
{
    {
        std::lock_guard<std::mutex> lock(_sleepMutex);
        ++_sleepEpoch;
    }
    _sleepCv.notify_all();
}

void
Executor::enqueue(Task task)
{
    const unsigned active = _active.load(std::memory_order_acquire);
    if (active == 0) {
        // No pool: run inline on the caller. This is the serial
        // degradation path (thread creation failed) and the
        // behaviour of a single-threaded platform.
        runTask(task);
        return;
    }
    // A pool worker pushes to its own deque (popped LIFO below, so
    // freshly split work stays cache-warm on the splitter unless
    // stolen); external threads round-robin across workers.
    const int self = tlWorkerIndex;
    unsigned target;
    if (self >= 0 && static_cast<unsigned>(self) < active) {
        target = static_cast<unsigned>(self);
    } else {
        target = _rr.fetch_add(1, std::memory_order_relaxed) % active;
    }
    Worker &worker = *_workers[target];
    {
        std::lock_guard<std::mutex> lock(worker.mutex);
        worker.queue.push_back(std::move(task));
    }
    wake();
}

bool
Executor::takeTask(unsigned self, Task &out)
{
    // Own deque first, newest entry (LIFO).
    Worker &own = *_workers[self];
    {
        std::lock_guard<std::mutex> lock(own.mutex);
        if (!own.queue.empty()) {
            out = std::move(own.queue.back());
            own.queue.pop_back();
            return true;
        }
    }
    // Steal the oldest entry (FIFO) from any other published worker.
    // Retired workers keep their (drained) structs, so scanning the
    // whole published range is safe and also picks up any stragglers
    // left in a retired queue.
    const unsigned published =
        _published.load(std::memory_order_acquire);
    for (unsigned step = 1; step < published; ++step) {
        const unsigned victim = (self + step) % published;
        Worker &other = *_workers[victim];
        std::lock_guard<std::mutex> lock(other.mutex);
        if (!other.queue.empty()) {
            out = std::move(other.queue.front());
            other.queue.pop_front();
            return true;
        }
    }
    return false;
}

void
Executor::runTask(Task &task)
{
    try {
        task.fn();
    } catch (const std::exception &exception) {
        // Tasks are expected to handle their own failures (cells
        // record a FailureRecord, groups fall back to per-cell); an
        // exception reaching here is a harness bug, but killing the
        // pool over it would turn one bad cell into a hung process.
        warn("executor task terminated with exception: %s",
             exception.what());
    } catch (...) {
        warn("executor task terminated with unknown exception");
    }
    if (task.batch != nullptr)
        task.batch->finish();
    // Completion side of the drain()/idleWait() ledger: every task
    // passes through runTask exactly once (workers, inline
    // degradation, and resize migration all end up here), so the
    // decrement cannot double-count a migrated task.
    if (_outstanding.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(_drainMutex);
        _drainCv.notify_all();
    }
}

void
Executor::drain()
{
    if (_outstanding.load(std::memory_order_acquire) == 0)
        return;
    std::unique_lock<std::mutex> lock(_drainMutex);
    _drainCv.wait(lock, [&] {
        return _outstanding.load(std::memory_order_acquire) == 0;
    });
}

bool
Executor::idleWait(double timeout_seconds)
{
    if (_outstanding.load(std::memory_order_acquire) == 0)
        return true;
    std::unique_lock<std::mutex> lock(_drainMutex);
    return _drainCv.wait_for(
        lock, std::chrono::duration<double>(timeout_seconds), [&] {
            return _outstanding.load(std::memory_order_acquire) == 0;
        });
}

void
Executor::workerLoop(unsigned index)
{
    tlWorkerIndex = static_cast<int>(index);
    Task task;
    while (true) {
        if (_stopping.load(std::memory_order_acquire) ||
            index >= _active.load(std::memory_order_acquire)) {
            return; // retired: leftovers are migrated after join
        }
        if (takeTask(index, task)) {
            runTask(task);
            continue;
        }
        // Sleep protocol: remember the enqueue epoch, re-scan, and
        // park only if no enqueue happened since - an enqueue
        // between the scan and the wait bumps the epoch and the
        // predicate refuses to sleep (no missed wakeups).
        std::uint64_t seen;
        {
            std::lock_guard<std::mutex> lock(_sleepMutex);
            seen = _sleepEpoch;
        }
        if (takeTask(index, task)) {
            runTask(task);
            continue;
        }
        std::unique_lock<std::mutex> lock(_sleepMutex);
        if (_sleepEpoch != seen)
            continue;
        _idle.fetch_add(1, std::memory_order_relaxed);
        _sleepCv.wait(lock, [&] {
            return _sleepEpoch != seen ||
                   _stopping.load(std::memory_order_acquire) ||
                   index >= _active.load(std::memory_order_acquire);
        });
        _idle.fetch_sub(1, std::memory_order_relaxed);
    }
}

void
Executor::ensureWorkers(unsigned count)
{
    std::lock_guard<std::mutex> resize(_resizeMutex);
    count = std::min(count, kMaxWorkers);
    if (_stopping.load(std::memory_order_acquire))
        return;
    const unsigned old = _active.load(std::memory_order_acquire);
    if (count == old)
        return;

    if (count < old) {
        // Retire the excess workers: drop the active count, wake
        // them so they notice, join, then migrate whatever was left
        // in their deques. The structs stay published forever, which
        // is what keeps concurrent thieves safe across this resize.
        _active.store(count, std::memory_order_release);
        wake();
        std::vector<Task> leftovers;
        for (unsigned i = count; i < old; ++i) {
            Worker &worker = *_workers[i];
            if (worker.thread.joinable())
                worker.thread.join();
            worker.thread = std::thread();
            std::lock_guard<std::mutex> lock(worker.mutex);
            while (!worker.queue.empty()) {
                leftovers.push_back(std::move(worker.queue.front()));
                worker.queue.pop_front();
            }
        }
        for (auto &task : leftovers) {
            if (count > 0)
                enqueue(std::move(task));
            else
                runTask(task);
        }
        return;
    }

    // Grow: publish the structs first (so thieves and the watchdog
    // can size off publishedWorkers()), then raise the active count,
    // then start threads. A worker that starts before _active covers
    // its index would just exit, hence the store-before-spawn order.
    for (unsigned i = old; i < count; ++i) {
        if (!_workers[i]) {
            _workers[i] = std::make_unique<Worker>();
            _workers[i]->index = i;
            _published.store(i + 1, std::memory_order_release);
        }
    }
    _active.store(count, std::memory_order_release);
    unsigned started = count;
    for (unsigned i = old; i < count; ++i) {
        try {
            _workers[i]->thread =
                std::thread(&Executor::workerLoop, this, i);
        } catch (const std::system_error &exception) {
            warn("worker thread construction failed after %u of %u "
                 "(%s); continuing degraded",
                 i, count, exception.what());
            started = i;
            break;
        }
    }
    if (started != count) {
        _active.store(started, std::memory_order_release);
        wake();
    }
}

void
Executor::resetAfterFork()
{
    const unsigned published =
        _published.load(std::memory_order_relaxed);
    for (unsigned i = 0; i < published; ++i) {
        // Leak the inherited struct wholesale: a parent thread may
        // have held its mutex mid-enqueue at fork time, and its
        // std::thread handle names a thread this process never had -
        // running either destructor could block or abort.
        if (_workers[i])
            (void)_workers[i].release();
    }
    _published.store(0, std::memory_order_relaxed);
    _active.store(0, std::memory_order_relaxed);
    _idle.store(0, std::memory_order_relaxed);
    _rr.store(0, std::memory_order_relaxed);
    _stopping.store(false, std::memory_order_relaxed);
    _outstanding.store(0, std::memory_order_relaxed);
    new (&_drainMutex) std::mutex();
    new (&_drainCv) std::condition_variable();
    new (&_resizeMutex) std::mutex();
    new (&_sleepMutex) std::mutex();
    new (&_sleepCv) std::condition_variable();
    _sleepEpoch = 0;
    _ownerPid = static_cast<long>(::getpid());
    tlWorkerIndex = -1;
}

Executor::~Executor()
{
    // A fork()ed child (gtest death tests use fork, fatal() exits
    // through static destruction) inherits this object but none of
    // its worker threads; joining the copied handles would block
    // forever. Detach them and leave - the threads only ever existed
    // in the parent, and the parent still joins normally.
    if (static_cast<long>(::getpid()) != _ownerPid) {
        const unsigned published =
            _published.load(std::memory_order_relaxed);
        for (unsigned i = 0; i < published; ++i) {
            if (_workers[i] && _workers[i]->thread.joinable())
                _workers[i]->thread.detach();
        }
        // The copied condvar still records the parent's parked
        // waiters, and glibc's pthread_cond_destroy blocks until all
        // waiters drain - which never happens in a process that owns
        // none of those threads. Overwrite it with a fresh condvar
        // (nothing heap-held to leak) so the member destructor that
        // runs right after this body cannot block.
        new (&_sleepCv) std::condition_variable();
        return;
    }
    {
        std::lock_guard<std::mutex> resize(_resizeMutex);
        _stopping.store(true, std::memory_order_release);
    }
    wake();
    const unsigned published =
        _published.load(std::memory_order_acquire);
    for (unsigned i = 0; i < published; ++i) {
        if (_workers[i] && _workers[i]->thread.joinable())
            _workers[i]->thread.join();
    }
}

void
Executor::Batch::spawn(std::function<void()> fn)
{
    _pending.fetch_add(1, std::memory_order_acq_rel);
    // The drain ledger counts a task from submission (here and in
    // spawnDeferred), not from enqueueing: resize migration re-routes
    // tasks through enqueue() without re-submitting them.
    _executor._outstanding.fetch_add(1, std::memory_order_acq_rel);
    _executor.enqueue(Task{std::move(fn), this});
}

void
Executor::Batch::defer()
{
    _pending.fetch_add(1, std::memory_order_acq_rel);
}

void
Executor::Batch::spawnDeferred(std::function<void()> fn)
{
    _executor._outstanding.fetch_add(1, std::memory_order_acq_rel);
    _executor.enqueue(Task{std::move(fn), this});
}

void
Executor::Batch::cancelDeferred()
{
    finish();
}

void
Executor::Batch::finish()
{
    if (_pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Lock before notifying so a waiter that just evaluated the
        // predicate false cannot miss the wakeup.
        std::lock_guard<std::mutex> lock(_mutex);
        _cv.notify_all();
    }
}

void
Executor::Batch::wait()
{
    if (_pending.load(std::memory_order_acquire) == 0)
        return;
    std::unique_lock<std::mutex> lock(_mutex);
    _cv.wait(lock, [&] {
        return _pending.load(std::memory_order_acquire) == 0;
    });
}

} // namespace ibp
