#include "sim/simulator.hh"

#include <chrono>

#include "robust/error.hh"

namespace ibp {

SimResult
simulate(IndirectPredictor &predictor, const Trace &trace,
         const SimOptions &options, SiteMissStats *site_stats)
{
    SimResult result;
    result.benchmark = trace.name();
    result.predictor = predictor.name();

    // Two clock reads bracket the whole loop; the per-branch path
    // stays untouched so telemetry cannot skew throughput.
    const auto start = std::chrono::steady_clock::now();

    std::uint64_t seen = 0;
    std::uint64_t step = 0;
    for (const auto &record : trace) {
        // One increment-and-mask per record keeps the cancellation
        // poll off the hot path's critical work; 1K records is a
        // few microseconds, so a deadline overrun is caught fast
        // even on the small traces of quick runs.
        if ((++step & 0x3ffu) == 0 && options.cancel &&
            options.cancel->load(std::memory_order_relaxed)) {
            throw RunException(RunError::timeout(
                "simulation of '" + trace.name() +
                "' cancelled by watchdog"));
        }
        if (record.kind == BranchKind::Conditional) {
            predictor.observeConditional(record.pc, record.taken,
                                         record.target);
            continue;
        }
        if (!record.isPredictedIndirect())
            continue; // returns are handled by a return-address stack

        ++seen;
        const Prediction prediction = predictor.predict(record.pc);
        const bool counted = seen > options.warmupBranches;
        if (counted) {
            ++result.branches;
            if (!prediction.correctFor(record.target)) {
                ++result.misses;
                if (!prediction.valid)
                    ++result.noPrediction;
            }
        }
        if (site_stats && counted) {
            ++site_stats->executions[record.pc];
            if (!prediction.correctFor(record.target))
                ++site_stats->misses[record.pc];
        }
        predictor.update(record.pc, record.target);
    }

    result.tableOccupancy = predictor.tableOccupancy();
    result.tableCapacity = predictor.tableCapacity();
    result.seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    return result;
}

} // namespace ibp
