#include "sim/simulator.hh"

#include <chrono>

#include "core/sweep_kernel.hh"
#include "robust/error.hh"
#include "util/logging.hh"

// Pull upcoming records toward L1 while the predictor works on the
// current one. The records are a dense read-only array (often a view
// of an mmap'ed cache file, so the first touch is a page-cache read,
// not a generator store), which makes a modest lookahead worthwhile.
#if defined(__GNUC__) || defined(__clang__)
#define IBP_PREFETCH(address) __builtin_prefetch((address), 0, 1)
#else
#define IBP_PREFETCH(address) ((void)0)
#endif

namespace ibp {

namespace {

constexpr std::size_t kPrefetchDistance = 16;

[[noreturn]] void
throwCancelled(const Trace &trace)
{
    throw RunException(RunError::timeout(
        "simulation of '" + trace.name() + "' cancelled by watchdog"));
}

} // namespace

SimResult
simulate(IndirectPredictor &predictor, const Trace &trace,
         const SimOptions &options, SiteMissStats *site_stats)
{
    SimResult result;
    result.benchmark = trace.name();
    result.predictor = predictor.name();

    if (site_stats != nullptr && trace.siteCountHint() != 0)
        site_stats->sites.reserve(trace.siteCountHint());

    // Two clock reads bracket the whole loop; the per-branch path
    // stays untouched so telemetry cannot skew throughput.
    const auto start = std::chrono::steady_clock::now();

    // Hoisted out of the loop so the iteration works on registers:
    // the cancel token pointer and the record array never change
    // mid-run, and the compiler cannot prove that through the
    // by-reference options struct on its own.
    const CancelToken *const cancel = options.cancel;
    const BranchRecord *const records = trace.data();
    const std::size_t count = trace.size();

    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < count; ++i) {
        // One increment-and-mask per record keeps the cancellation
        // poll off the hot path's critical work; 1K records is a
        // few microseconds, so a deadline overrun is caught fast
        // even on the small traces of quick runs.
        if (((i + 1) & 0x3ffu) == 0 && cancel && cancel->cancelled())
            throwCancelled(trace);
        if (i + kPrefetchDistance < count)
            IBP_PREFETCH(records + i + kPrefetchDistance);

        const BranchRecord &record = records[i];
        if (record.kind == BranchKind::Conditional) {
            predictor.observeConditional(record.pc, record.taken,
                                         record.target);
            continue;
        }
        if (!record.isPredictedIndirect())
            continue; // returns are handled by a return-address stack

        ++seen;
        const Prediction prediction = predictor.predict(record.pc);
        const bool counted = seen > options.warmupBranches;
        if (counted) {
            const bool correct = prediction.correctFor(record.target);
            ++result.branches;
            if (!correct) {
                ++result.misses;
                if (!prediction.valid)
                    ++result.noPrediction;
            }
            if (site_stats) {
                bool inserted = false;
                SiteMissStats::SiteCounts &counts =
                    site_stats->sites.findOrInsert(record.pc,
                                                   inserted);
                ++counts.executions;
                if (!correct)
                    ++counts.misses;
            }
        }
        predictor.update(record.pc, record.target);
    }

    result.tableOccupancy = predictor.tableOccupancy();
    result.tableCapacity = predictor.tableCapacity();
    result.seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    result.groupSeconds = result.seconds;
    return result;
}

std::vector<SimResult>
simulateMany(std::span<IndirectPredictor *const> predictors,
             const Trace &trace, const SimOptions &options)
{
    std::vector<SimResult> results(predictors.size());
    if (predictors.empty())
        return results;
    for (std::size_t i = 0; i < predictors.size(); ++i) {
        IBP_ASSERT(predictors[i] != nullptr,
                   "simulateMany: null predictor at index %zu", i);
        results[i].benchmark = trace.name();
        results[i].predictor = predictors[i]->name();
    }

    const auto start = std::chrono::steady_clock::now();

    const CancelToken *const cancel = options.cancel;
    const BranchRecord *const records = trace.data();
    const std::size_t count = trace.size();
    const std::size_t predictor_count = predictors.size();
    SweepKernel *const kernel = options.kernel;

    // The record stream is walked once; the per-predictor work is
    // the inner loop, so every predictor sees exactly the sequence
    // simulate() would have fed it and the counters must match it
    // bit for bit.
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < count; ++i) {
        if (((i + 1) & 0x3ffu) == 0 && cancel && cancel->cancelled())
            throwCancelled(trace);
        if (i + kPrefetchDistance < count)
            IBP_PREFETCH(records + i + kPrefetchDistance);

        const BranchRecord &record = records[i];
        if (record.kind == BranchKind::Conditional) {
            for (std::size_t p = 0; p < predictor_count; ++p) {
                predictors[p]->observeConditional(record.pc,
                                                  record.taken,
                                                  record.target);
            }
            // Bound predictors suppressed their own pushes; advance
            // the shared histories once, after all of them looked.
            if (kernel != nullptr)
                kernel->observeConditional(record.pc, record.taken,
                                           record.target);
            continue;
        }
        if (!record.isPredictedIndirect())
            continue; // returns are handled by a return-address stack

        ++seen;
        const bool counted = seen > options.warmupBranches;
        for (std::size_t p = 0; p < predictor_count; ++p) {
            IndirectPredictor *predictor = predictors[p];
            const Prediction prediction = predictor->predict(record.pc);
            if (counted) {
                SimResult &result = results[p];
                ++result.branches;
                if (!prediction.correctFor(record.target)) {
                    ++result.misses;
                    if (!prediction.valid)
                        ++result.noPrediction;
                }
            }
            predictor->update(record.pc, record.target);
        }
        // Solo predictors push history inside update() *after*
        // consuming the key they cached pre-push; committing the
        // shared histories once, after every bound predictor
        // trained, reproduces exactly that order.
        if (kernel != nullptr)
            kernel->commit(record.pc, record.target);
    }

    // One traversal produced all results, so the wall time is shared
    // state: record the real group time and split it evenly so
    // aggregate cell-seconds telemetry stays comparable with the
    // per-cell path (the quotient is synthetic - consumers branch on
    // sharedTraversal). predictors is non-empty here (guarded above).
    const double group_seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    const double seconds =
        group_seconds / static_cast<double>(predictors.size());
    for (std::size_t i = 0; i < predictors.size(); ++i) {
        results[i].tableOccupancy = predictors[i]->tableOccupancy();
        results[i].tableCapacity = predictors[i]->tableCapacity();
        results[i].seconds = seconds;
        results[i].groupSeconds = group_seconds;
        results[i].sharedTraversal = true;
    }
    return results;
}

} // namespace ibp
