#include "sim/simulator.hh"

#include <chrono>
#include <unordered_map>

#include "core/hybrid.hh"
#include "core/set_assoc_table.hh"
#include "core/simd.hh"
#include "core/sweep_kernel.hh"
#include "core/two_level.hh"
#include "robust/error.hh"
#include "trace/trace_block.hh"
#include "util/logging.hh"

// IBP_PREFETCH (core/simd.hh) pulls upcoming records toward L1 while
// the predictor works on the current one. The records are a dense
// read-only array (often a view of an mmap'ed cache file, so the
// first touch is a page-cache read, not a generator store), which
// makes a modest lookahead worthwhile.

namespace ibp {

namespace {

constexpr std::size_t kPrefetchDistance = 16;

[[noreturn]] void
throwCancelled(const Trace &trace)
{
    throw RunException(RunError::timeout(
        "simulation of '" + trace.name() + "' cancelled by watchdog"));
}

/**
 * The lane engine's execution plan for a fused traversal.
 *
 * Columns whose per-record work is a pure function of bound
 * two-level component predictions - plain bound TwoLevelPredictor
 * columns and confidence-metaprediction hybrids with every component
 * bound - are executed in *phases* across the whole column set:
 * first every distinct state machine is probed, then each column
 * combines its members' predictions into counters, then every
 * machine trains, and only then do the remaining (generic) columns
 * run their usual predict/update pairs.
 *
 * A *machine* is one dedup state owner (TwoLevelPredictor whose
 * table actually holds state); columns reference machines by index,
 * so a fig17 row's dozen hybrids sharing a p1 component probe that
 * component once per record instead of once per column. The phase
 * split is bit-identical to the interleaved order because columns
 * are state-disjoint: the only couplings are the dedup prediction
 * memo (written by the machine probe phase, version-gated, and
 * deliberately surviving the machine's own update until the kernel
 * commit bumps the version) and the shared history (advanced only
 * by the commit after all phases).
 *
 * The machine's driver object is the first-encountered component
 * referencing that owner, upgraded to the owner itself whenever the
 * owner appears in a lane column - so update() trains the state
 * exactly once per record: through the driver when the owner's
 * column is a lane column (driver == owner), through the owner's
 * own generic column otherwise (driver is a replica whose update()
 * is a no-op).
 */
struct LanePlan
{
    struct Column
    {
        std::size_t result;    ///< index into the results array
        bool hybrid;           ///< confidence combine vs passthrough
        std::uint32_t first;   ///< offset into memberPool
        std::uint32_t count;   ///< member machines (1 for plain)
    };

    /**
     * One machine's flattened per-record execution recipe: the lane
     * engine drives the state-owning table directly (prefetch, probe,
     * access plus the verbatim two-level update rule) with the key of
     * the machine's shared variant, resolved once per record per
     * *slot* (distinct variant). This removes the whole
     * predict()/update()/currentKey() call stack from the hot loop;
     * the dedup contract survives because replicated owners get their
     * prediction memo primed with the probed answer (see prime).
     */
    struct Machine
    {
        TargetTable *table;        ///< the owner's second-level table
        /** table when it is a SetAssocTable (the sweep workhorse),
         *  else nullptr: SetAssocTable is final with inline
         *  probe/access, so this pointer devirtualizes the per-record
         *  table work and lets it inline into the lane loops. */
        SetAssocTable *setAssoc;
        std::uint32_t keySlot;     ///< index into keySlots/laneKeys
        TwoLevelPredictor *owner;  ///< state owner (memo priming)
        /** Phase 3 trains this table (driver == owner). When the
         *  owner's own column is generic, its update() there is the
         *  one real training pass and phase 3 must not add another. */
        bool train;
        bool hysteresis;           ///< owner's 2bc update rule flag
        /** Owner has replicas or out-of-plan readers: mirror the
         *  probed prediction into its sharedPredict() memo. */
        bool prime;
    };

    /** One distinct (variant, group) key source among the machines. */
    struct KeySlot
    {
        SweepKeyVariant *variant;
        SweepHistoryGroup *group;
    };

    std::vector<TwoLevelPredictor *> machines; ///< driver objects
    std::vector<Machine> exec;                 ///< parallel to machines
    std::vector<KeySlot> keySlots;
    std::vector<Key> laneKeys;                 ///< per-slot scratch
    std::vector<std::uint16_t> memberPool;     ///< column members
    std::vector<Column> columns;               ///< lane columns
    std::vector<IndirectPredictor *> generic;  ///< record-at-a-time
    std::vector<std::size_t> genericResult;
    std::vector<Prediction> lanePred;          ///< per-machine scratch
};

LanePlan
buildLanePlan(std::span<IndirectPredictor *const> predictors,
              bool fused)
{
    LanePlan plan;
    std::unordered_map<const TwoLevelPredictor *, std::uint16_t>
        machineOf;
    auto machineIndex = [&plan, &machineOf](
                            TwoLevelPredictor &component) {
        TwoLevelPredictor *owner = component.sweepPrimary() != nullptr
                                       ? component.sweepPrimary()
                                       : &component;
        auto [it, inserted] = machineOf.try_emplace(
            owner, static_cast<std::uint16_t>(plan.machines.size()));
        if (inserted)
            plan.machines.push_back(&component);
        else if (&component == owner)
            plan.machines[it->second] = owner;
        return it->second;
    };

    for (std::size_t i = 0; i < predictors.size(); ++i) {
        IndirectPredictor *predictor = predictors[i];
        if (fused) {
            if (auto *two =
                    dynamic_cast<TwoLevelPredictor *>(predictor);
                two != nullptr && two->sweepBound()) {
                plan.columns.push_back(
                    {i, false,
                     static_cast<std::uint32_t>(
                         plan.memberPool.size()),
                     1});
                plan.memberPool.push_back(machineIndex(*two));
                continue;
            }
            if (auto *hybrid =
                    dynamic_cast<HybridPredictor *>(predictor);
                hybrid != nullptr &&
                hybrid->config().meta == MetaKind::Confidence) {
                bool all_bound = true;
                for (unsigned c = 0; c < hybrid->numComponents(); ++c)
                    all_bound &= hybrid->component(c).sweepBound();
                if (all_bound) {
                    const LanePlan::Column column{
                        i, true,
                        static_cast<std::uint32_t>(
                            plan.memberPool.size()),
                        hybrid->numComponents()};
                    for (unsigned c = 0; c < hybrid->numComponents();
                         ++c) {
                        plan.memberPool.push_back(
                            machineIndex(hybrid->component(c)));
                    }
                    plan.columns.push_back(column);
                    continue;
                }
            }
        }
        plan.generic.push_back(predictor);
        plan.genericResult.push_back(i);
    }
    plan.lanePred.resize(plan.machines.size());

    // Resolve the flattened execution recipes now that every driver
    // upgrade has happened. Machines sharing a PatternSpec share a
    // key slot, so a fig17 row resolves each distinct key exactly
    // once per record no matter how many tables consume it.
    plan.exec.reserve(plan.machines.size());
    for (TwoLevelPredictor *driver : plan.machines) {
        TwoLevelPredictor *owner = driver->sweepPrimary() != nullptr
                                       ? driver->sweepPrimary()
                                       : driver;
        SweepKeyVariant *variant = owner->sweepVariant();
        SweepHistoryGroup *group = owner->sweepGroup();
        IBP_ASSERT(variant != nullptr && group != nullptr,
                   "lane machine not sweep-bound");
        std::uint32_t slot = 0;
        while (slot < plan.keySlots.size() &&
               plan.keySlots[slot].variant != variant) {
            ++slot;
        }
        if (slot == plan.keySlots.size())
            plan.keySlots.push_back({variant, group});
        const bool train = driver == owner;
        plan.exec.push_back(
            {&owner->table(),
             dynamic_cast<SetAssocTable *>(&owner->table()), slot,
             owner, train, owner->config().hysteresis,
             owner->replicated()});
    }
    plan.laneKeys.resize(plan.keySlots.size());
    return plan;
}

} // namespace

SimResult
simulate(IndirectPredictor &predictor, const Trace &trace,
         const SimOptions &options, SiteMissStats *site_stats)
{
    SimResult result;
    result.benchmark = trace.name();
    result.predictor = predictor.name();

    if (site_stats != nullptr && trace.siteCountHint() != 0)
        site_stats->sites.reserve(trace.siteCountHint());

    // Two clock reads bracket the whole loop; the per-branch path
    // stays untouched so telemetry cannot skew throughput.
    const auto start = std::chrono::steady_clock::now();

    // Hoisted out of the loop so the iteration works on registers:
    // the cancel token pointer and the record array never change
    // mid-run, and the compiler cannot prove that through the
    // by-reference options struct on its own.
    const CancelToken *const cancel = options.cancel;
    const BranchRecord *const records = trace.data();
    const std::size_t count = trace.size();

    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < count; ++i) {
        // One increment-and-mask per record keeps the cancellation
        // poll off the hot path's critical work; 1K records is a
        // few microseconds, so a deadline overrun is caught fast
        // even on the small traces of quick runs.
        if (((i + 1) & 0x3ffu) == 0 && cancel && cancel->cancelled())
            throwCancelled(trace);
        if (i + kPrefetchDistance < count)
            IBP_PREFETCH(records + i + kPrefetchDistance);

        const BranchRecord &record = records[i];
        if (record.kind == BranchKind::Conditional) {
            predictor.observeConditional(record.pc, record.taken,
                                         record.target);
            continue;
        }
        if (!record.isPredictedIndirect())
            continue; // returns are handled by a return-address stack

        ++seen;
        const Prediction prediction = predictor.predict(record.pc);
        const bool counted = seen > options.warmupBranches;
        if (counted) {
            const bool correct = prediction.correctFor(record.target);
            ++result.branches;
            if (!correct) {
                ++result.misses;
                if (!prediction.valid)
                    ++result.noPrediction;
            }
            if (site_stats) {
                bool inserted = false;
                SiteMissStats::SiteCounts &counts =
                    site_stats->sites.findOrInsert(record.pc,
                                                   inserted);
                ++counts.executions;
                if (!correct)
                    ++counts.misses;
            }
        }
        predictor.update(record.pc, record.target);
    }

    result.tableOccupancy = predictor.tableOccupancy();
    result.tableCapacity = predictor.tableCapacity();
    result.seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    result.groupSeconds = result.seconds;
    return result;
}

std::vector<SimResult>
simulateMany(std::span<IndirectPredictor *const> predictors,
             const Trace &trace, const SimOptions &options)
{
    std::vector<SimResult> results(predictors.size());
    if (predictors.empty())
        return results;
    for (std::size_t i = 0; i < predictors.size(); ++i) {
        IBP_ASSERT(predictors[i] != nullptr,
                   "simulateMany: null predictor at index %zu", i);
        results[i].benchmark = trace.name();
        results[i].predictor = predictors[i]->name();
    }

    const auto start = std::chrono::steady_clock::now();

    const CancelToken *const cancel = options.cancel;
    SweepKernel *const kernel = options.kernel;

    // Partition the columns between the batched lane engine and the
    // generic path (see LanePlan), and decide whether conditional
    // records matter to anyone: bound predictors fold conditional
    // targets in through the kernel's groups, so when no generic
    // column consumes them either, the block classifier drops them
    // without ever dispatching a record.
    LanePlan plan = buildLanePlan(predictors, kernel != nullptr);
    bool need_conditionals =
        kernel != nullptr && kernel->hasConditionalGroups();
    for (IndirectPredictor *predictor : predictors)
        need_conditionals |= predictor->consumesConditionals();

    const std::size_t machine_count = plan.machines.size();
    const LanePlan::Machine *const machines = plan.exec.data();
    const std::size_t key_slot_count = plan.keySlots.size();
    const LanePlan::KeySlot *const key_slots = plan.keySlots.data();
    Key *const lane_keys = plan.laneKeys.data();
    Prediction *const lane_pred = plan.lanePred.data();
    const std::uint16_t *const members = plan.memberPool.data();

    if (options.traversal != nullptr) {
        options.traversal->laneColumns =
            static_cast<std::uint32_t>(plan.columns.size());
        options.traversal->genericColumns =
            static_cast<std::uint32_t>(plan.generic.size());
        options.traversal->laneMachines =
            static_cast<std::uint32_t>(machine_count);
    }

    // The trace is consumed in cache-resident SoA blocks (zero-copy
    // for columnar traces); the classifier turns each block into the
    // index list of records anyone cares about. Every predictor
    // still sees exactly the sequence simulate() would have fed it,
    // so the counters must match it bit for bit.
    TraceBlockCursor cursor(trace);
    std::vector<std::uint32_t> selected(kTraceBlockRecords);
    std::uint64_t seen = 0;
    std::uint64_t polled = 0;
    TraceBlock block;
    while (cursor.next(block)) {
        if (cancel && cancel->cancelled())
            throwCancelled(trace);
        const std::size_t selected_count = simd::classifyMeta(
            block.meta, block.count, 0, need_conditionals,
            selected.data());
        if (options.traversal != nullptr) {
            if (cursor.columnarSource())
                ++options.traversal->columnarBlocks;
            else
                ++options.traversal->transposedBlocks;
            options.traversal->skippedRecords +=
                block.count - selected_count;
        }

        for (std::size_t s = 0; s < selected_count; ++s) {
            if ((++polled & 0x3ffu) == 0 && cancel &&
                cancel->cancelled()) {
                throwCancelled(trace);
            }
            const std::uint32_t index = selected[s];
            const Addr pc = block.pc[index];
            const Addr target = block.target[index];
            const std::uint8_t meta = block.meta[index];

            if (branchMetaKind(meta) == BranchKind::Conditional) {
                // Lane columns are fully bound - their
                // observeConditional() chains are no-ops - so only
                // generic columns need the record itself.
                const bool taken = branchMetaTaken(meta);
                for (IndirectPredictor *predictor : plan.generic)
                    predictor->observeConditional(pc, taken, target);
                if (kernel != nullptr)
                    kernel->observeConditional(pc, taken, target);
                continue;
            }

            ++seen;
            const bool counted = seen > options.warmupBranches;

            // Phase 0: resolve each distinct key once (incremental
            // variants collapse this to an address mix), then start
            // pulling every machine's table set toward the cache -
            // the dozen-plus tables of a sweep row do not fit L2 and
            // their probe misses would otherwise stall back to back.
            for (std::size_t v = 0; v < key_slot_count; ++v) {
                lane_keys[v] = key_slots[v].variant->laneKey(
                    pc, *key_slots[v].group);
            }
            for (std::size_t m = 0; m < machine_count; ++m) {
                const LanePlan::Machine &machine = machines[m];
                if (machine.setAssoc != nullptr)
                    machine.setAssoc->prefetch(
                        lane_keys[machine.keySlot]);
            }

            // Phase 1: probe every distinct state machine once -
            // directly on the owning table, reproducing lookup()
            // verbatim. The probes are pre-update by construction;
            // replicated owners get their prediction memo primed so
            // replicas and generic readers later in the record still
            // mirror this pre-update answer.
            for (std::size_t m = 0; m < machine_count; ++m) {
                const LanePlan::Machine &machine = machines[m];
                const TableEntry *entry =
                    machine.setAssoc != nullptr
                        ? machine.setAssoc->probe(
                              lane_keys[machine.keySlot])
                        : machine.table->probe(
                              lane_keys[machine.keySlot]);
                if (entry == nullptr || !entry->valid) {
                    lane_pred[m] = Prediction{};
                } else {
                    lane_pred[m] = Prediction{
                        true, entry->target,
                        static_cast<int>(entry->confidence.value())};
                }
                if (machine.prime)
                    machine.owner->primeSharedPrediction(pc,
                                                         lane_pred[m]);
            }

            // Phase 2: per-column combine into counters (pure
            // arithmetic - skipped wholesale during warm-up).
            if (counted) {
                for (const LanePlan::Column &column : plan.columns) {
                    const std::uint16_t *member =
                        members + column.first;
                    Prediction combined;
                    if (!column.hybrid) {
                        combined = lane_pred[member[0]];
                    } else {
                        // The confidence metapredictor, verbatim:
                        // highest confidence wins, ties to the
                        // earlier component, an invalid winner means
                        // no prediction (HybridPredictor::predict).
                        int chosen = -1;
                        int best = -2;
                        for (std::uint32_t k = 0; k < column.count;
                             ++k) {
                            const Prediction &pred =
                                lane_pred[member[k]];
                            if (pred.confidence > best) {
                                best = pred.confidence;
                                chosen = static_cast<int>(k);
                            }
                        }
                        if (chosen >= 0 &&
                            lane_pred[member[chosen]].valid) {
                            combined = lane_pred[member[chosen]];
                        }
                    }
                    SimResult &result = results[column.result];
                    ++result.branches;
                    if (!combined.correctFor(target)) {
                        ++result.misses;
                        if (!combined.valid)
                            ++result.noPrediction;
                    }
                }
            }

            // Phase 3: train every machine whose driver is its owner
            // exactly once, with the verbatim two-level update rule
            // (TwoLevelPredictor::update); the access consumes the
            // probe's way memo, and bound owners push no history
            // (the kernel commit below advances the shared groups).
            // Machines owned by a generic column are trained there,
            // in phase 4.
            for (std::size_t m = 0; m < machine_count; ++m) {
                const LanePlan::Machine &machine = machines[m];
                if (!machine.train)
                    continue;
                bool replaced = false;
                TableEntry &entry =
                    machine.setAssoc != nullptr
                        ? machine.setAssoc->access(
                              lane_keys[machine.keySlot], replaced)
                        : machine.table->access(
                              lane_keys[machine.keySlot], replaced);
                if (replaced || !entry.valid) {
                    entry.target = target;
                    entry.valid = true;
                } else if (entry.target == target) {
                    entry.hysteresis.hit();
                    entry.confidence.increment();
                } else {
                    entry.confidence.decrement();
                    if (!machine.hysteresis || entry.hysteresis.miss())
                        entry.target = target;
                }
            }

            // Phase 4: generic columns run their usual interleaved
            // predict/update. Reads of shared machine state hit the
            // version-gated prediction memo, which still holds the
            // pre-update answer until the commit below.
            for (std::size_t g = 0; g < plan.generic.size(); ++g) {
                IndirectPredictor *predictor = plan.generic[g];
                const Prediction prediction = predictor->predict(pc);
                if (counted) {
                    SimResult &result =
                        results[plan.genericResult[g]];
                    ++result.branches;
                    if (!prediction.correctFor(target)) {
                        ++result.misses;
                        if (!prediction.valid)
                            ++result.noPrediction;
                    }
                }
                predictor->update(pc, target);
            }

            // Solo predictors push history inside update() *after*
            // consuming the key they cached pre-push; committing the
            // shared histories once, after every bound predictor
            // trained, reproduces exactly that order.
            if (kernel != nullptr)
                kernel->commit(pc, target);
        }
    }

    // One traversal produced all results, so the wall time is shared
    // state: record the real group time and split it evenly so
    // aggregate cell-seconds telemetry stays comparable with the
    // per-cell path (the quotient is synthetic - consumers branch on
    // sharedTraversal). predictors is non-empty here (guarded above).
    const double group_seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    const double seconds =
        group_seconds / static_cast<double>(predictors.size());
    for (std::size_t i = 0; i < predictors.size(); ++i) {
        results[i].tableOccupancy = predictors[i]->tableOccupancy();
        results[i].tableCapacity = predictors[i]->tableCapacity();
        results[i].seconds = seconds;
        results[i].groupSeconds = group_seconds;
        results[i].sharedTraversal = true;
    }
    return results;
}

} // namespace ibp
