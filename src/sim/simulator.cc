#include "sim/simulator.hh"

#include <chrono>

#include "robust/error.hh"
#include "util/logging.hh"

namespace ibp {

SimResult
simulate(IndirectPredictor &predictor, const Trace &trace,
         const SimOptions &options, SiteMissStats *site_stats)
{
    SimResult result;
    result.benchmark = trace.name();
    result.predictor = predictor.name();

    // Two clock reads bracket the whole loop; the per-branch path
    // stays untouched so telemetry cannot skew throughput.
    const auto start = std::chrono::steady_clock::now();

    std::uint64_t seen = 0;
    std::uint64_t step = 0;
    for (const auto &record : trace) {
        // One increment-and-mask per record keeps the cancellation
        // poll off the hot path's critical work; 1K records is a
        // few microseconds, so a deadline overrun is caught fast
        // even on the small traces of quick runs.
        if ((++step & 0x3ffu) == 0 && options.cancel &&
            options.cancel->cancelled()) {
            throw RunException(RunError::timeout(
                "simulation of '" + trace.name() +
                "' cancelled by watchdog"));
        }
        if (record.kind == BranchKind::Conditional) {
            predictor.observeConditional(record.pc, record.taken,
                                         record.target);
            continue;
        }
        if (!record.isPredictedIndirect())
            continue; // returns are handled by a return-address stack

        ++seen;
        const Prediction prediction = predictor.predict(record.pc);
        const bool counted = seen > options.warmupBranches;
        if (counted) {
            ++result.branches;
            if (!prediction.correctFor(record.target)) {
                ++result.misses;
                if (!prediction.valid)
                    ++result.noPrediction;
            }
        }
        if (site_stats && counted) {
            ++site_stats->executions[record.pc];
            if (!prediction.correctFor(record.target))
                ++site_stats->misses[record.pc];
        }
        predictor.update(record.pc, record.target);
    }

    result.tableOccupancy = predictor.tableOccupancy();
    result.tableCapacity = predictor.tableCapacity();
    result.seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    return result;
}

std::vector<SimResult>
simulateMany(std::span<IndirectPredictor *const> predictors,
             const Trace &trace, const SimOptions &options)
{
    std::vector<SimResult> results(predictors.size());
    if (predictors.empty())
        return results;
    for (std::size_t i = 0; i < predictors.size(); ++i) {
        IBP_ASSERT(predictors[i] != nullptr,
                   "simulateMany: null predictor at index %zu", i);
        results[i].benchmark = trace.name();
        results[i].predictor = predictors[i]->name();
    }

    const auto start = std::chrono::steady_clock::now();

    // The record stream is walked once; the per-predictor work is
    // the inner loop, so every predictor sees exactly the sequence
    // simulate() would have fed it and the counters must match it
    // bit for bit.
    std::uint64_t seen = 0;
    std::uint64_t step = 0;
    for (const auto &record : trace) {
        if ((++step & 0x3ffu) == 0 && options.cancel &&
            options.cancel->cancelled()) {
            throw RunException(RunError::timeout(
                "simulation of '" + trace.name() +
                "' cancelled by watchdog"));
        }
        if (record.kind == BranchKind::Conditional) {
            for (IndirectPredictor *predictor : predictors) {
                predictor->observeConditional(record.pc, record.taken,
                                              record.target);
            }
            continue;
        }
        if (!record.isPredictedIndirect())
            continue; // returns are handled by a return-address stack

        ++seen;
        const bool counted = seen > options.warmupBranches;
        for (std::size_t i = 0; i < predictors.size(); ++i) {
            IndirectPredictor *predictor = predictors[i];
            const Prediction prediction = predictor->predict(record.pc);
            if (counted) {
                SimResult &result = results[i];
                ++result.branches;
                if (!prediction.correctFor(record.target)) {
                    ++result.misses;
                    if (!prediction.valid)
                        ++result.noPrediction;
                }
            }
            predictor->update(record.pc, record.target);
        }
    }

    // One traversal produced all results, so the wall time is shared
    // state: split it evenly so aggregate cell-seconds telemetry
    // stays comparable with the per-cell path.
    const double seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count() /
        static_cast<double>(predictors.size());
    for (std::size_t i = 0; i < predictors.size(); ++i) {
        results[i].tableOccupancy = predictors[i]->tableOccupancy();
        results[i].tableCapacity = predictors[i]->tableCapacity();
        results[i].seconds = seconds;
    }
    return results;
}

} // namespace ibp
