#include "sim/result_store.hh"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <utility>

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include "core/spec_codec.hh"
#include "core/table_spec.hh"
#include "robust/atomic_file.hh"
#include "robust/cache_sweep.hh"
#include "util/json.hh"
#include "util/logging.hh"

namespace ibp {

namespace {

/** On-disk entry layout version (independent of the simulator
 *  version, which is part of the KEY): bump when the JSON shape or
 *  checksum rule changes, so old files quarantine cleanly. */
constexpr unsigned kEntryFormatVersion = 1;

std::unique_ptr<ResultStore> &
globalSlot()
{
    // Armed lazily from the environment so tools and tests that
    // never touch the option plumbing still get the store by
    // exporting IBP_RESULT_STORE=<dir>.
    static std::unique_ptr<ResultStore> store = [] {
        const char *env = std::getenv("IBP_RESULT_STORE");
        return (env && *env) ? std::make_unique<ResultStore>(env)
                             : nullptr;
    }();
    return store;
}

Json
payloadJson(const std::string &key, const StoredResult &result)
{
    Json payload = Json::object();
    payload.set("format", kEntryFormatVersion);
    payload.set("key", key);
    payload.set("benchmark", result.benchmark);
    payload.set("predictor", result.predictor);
    payload.set("counters", Json(result.hasCounters));
    if (result.hasCounters) {
        payload.set("branches", result.branches);
        payload.set("misses", result.misses);
        payload.set("no_prediction", result.noPrediction);
        payload.set("table_occupancy", result.tableOccupancy);
        payload.set("table_capacity", result.tableCapacity);
        payload.set("seconds", result.seconds);
        payload.set("group_seconds", result.groupSeconds);
        payload.set("shared_traversal", Json(result.sharedTraversal));
    }
    payload.set("miss_percent", result.missPercent);
    return payload;
}

} // namespace

CellClaim::CellClaim(CellClaim &&other) noexcept
    : _state(other._state), _fd(other._fd),
      _path(std::move(other._path))
{
    other._state = State::None;
    other._fd = -1;
    other._path.clear();
}

CellClaim &
CellClaim::operator=(CellClaim &&other) noexcept
{
    if (this != &other) {
        release();
        _state = other._state;
        _fd = other._fd;
        _path = std::move(other._path);
        other._state = State::None;
        other._fd = -1;
        other._path.clear();
    }
    return *this;
}

CellClaim::~CellClaim()
{
    release();
}

void
CellClaim::release()
{
    if (_state == State::Acquired && _fd >= 0) {
        // Unlink BEFORE closing: a contender that already open()ed
        // this inode fails its post-flock identity check and retries
        // against a fresh sidecar instead of "winning" a lock nobody
        // else can see.
        ::unlink(_path.c_str());
    }
    if (_fd >= 0)
        ::close(_fd);
    _fd = -1;
    _state = State::None;
    _path.clear();
}

CellClaim
ResultStore::tryClaim(const std::string &key) const
{
    std::error_code ec;
    std::filesystem::create_directories(_directory, ec);
    const std::string path = pathFor(key) + ".claim";
    for (int attempt = 0; attempt < 8; ++attempt) {
        const int fd = ::open(path.c_str(),
                              O_CREAT | O_RDWR | O_CLOEXEC, 0644);
        if (fd < 0)
            break; // degrade to lockless (see header)
        if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
            ::close(fd);
            return CellClaim(CellClaim::State::Busy, -1, "");
        }
        // The previous holder may have unlinked the sidecar between
        // our open() and flock(): we would then hold a lock on an
        // orphaned inode invisible to later contenders. Verify the
        // path still names our inode; retry on a fresh open if not.
        struct stat locked, current;
        if (::fstat(fd, &locked) == 0 &&
            ::stat(path.c_str(), &current) == 0 &&
            locked.st_ino == current.st_ino &&
            locked.st_dev == current.st_dev) {
            return CellClaim(CellClaim::State::Acquired, fd, path);
        }
        ::close(fd);
    }
    return CellClaim(CellClaim::State::Acquired, -1, "");
}

ResultStore::ResultStore(std::string directory)
    : _directory(std::move(directory))
{
}

ResultStore *
ResultStore::global()
{
    return globalSlot().get();
}

void
ResultStore::configureGlobal(const std::string &directory)
{
    globalSlot() = directory.empty()
                       ? nullptr
                       : std::make_unique<ResultStore>(directory);
}

std::uint64_t
ResultStore::effectiveSimulatorVersion()
{
    if (const char *env = std::getenv("IBP_RESULT_STORE_VERSION")) {
        if (*env) {
            char *end = nullptr;
            const unsigned long long parsed =
                std::strtoull(env, &end, 10);
            if (end != env && *end == '\0')
                return static_cast<std::uint64_t>(parsed);
        }
    }
    return kSimulatorVersion;
}

std::string
ResultStore::cellKey(const std::string &trace_key,
                     std::uint64_t spec_hash)
{
    // Canonical pipe-delimited description, hashed with the same
    // FNV-1a the spec codec uses. The trace key (which already
    // carries the benchmark name) prefixes the file name so a store
    // directory stays human-debuggable.
    const std::string description =
        "sim=" + std::to_string(effectiveSimulatorVersion()) +
        "|trace=" + trace_key + "|spec=" + specHashHex(spec_hash) +
        "|impl=" + tableImplName();
    return trace_key + "-" + specHashHex(specBytesHash(description));
}

std::string
ResultStore::pathFor(const std::string &key) const
{
    return _directory + "/" + key + ".json";
}

bool
ResultStore::contains(const std::string &key) const
{
    std::error_code ec;
    return std::filesystem::exists(pathFor(key), ec) && !ec;
}

ResultStore::LoadOutcome
ResultStore::load(const std::string &key) const
{
    const std::string path = pathFor(key);

    std::string text;
    {
        std::ifstream in(path, std::ios::binary);
        if (!in.is_open())
            return LoadOutcome{LoadStatus::Miss, {}};
        std::ostringstream buffer;
        buffer << in.rdbuf();
        text = buffer.str();
    }

    // Validate BEFORE trusting anything: parse, entry format,
    // checksum over the re-dumped payload, key echo. Any failure
    // quarantines the file (pending.json.corrupt policy) so the
    // evidence survives while the cell re-simulates.
    const auto quarantine = [&](const char *why) {
        std::error_code ec;
        std::filesystem::rename(path, path + ".corrupt", ec);
        warn("result store entry '%s' %s; quarantined to %s.corrupt",
             path.c_str(), why, path.c_str());
        return LoadOutcome{LoadStatus::Invalidated, {}};
    };

    Json entry;
    try {
        entry = Json::parse(text);
    } catch (const JsonParseError &) {
        return quarantine("is not valid JSON");
    }
    if (!entry.contains("payload") || !entry.contains("checksum"))
        return quarantine("is missing payload/checksum");
    const Json &payload = entry.at("payload");
    if (entry.at("checksum").asString() !=
        specHashHex(specBytesHash(payload.dump()))) {
        return quarantine("failed its checksum");
    }
    if (static_cast<unsigned>(payload.numberOr("format", 0)) !=
        kEntryFormatVersion) {
        return quarantine("has a foreign entry format");
    }
    if (payload.stringOr("key", "") != key)
        return quarantine("echoes a foreign key");

    StoredResult result;
    result.benchmark = payload.stringOr("benchmark", "");
    result.predictor = payload.stringOr("predictor", "");
    result.hasCounters = payload.contains("counters") &&
                         payload.at("counters").asBool();
    if (result.hasCounters) {
        if (!payload.contains("branches"))
            return quarantine("claims counters it does not carry");
        result.branches = payload.at("branches").asUint();
        result.misses = payload.at("misses").asUint();
        result.noPrediction = payload.at("no_prediction").asUint();
        result.tableOccupancy =
            payload.at("table_occupancy").asUint();
        result.tableCapacity = payload.at("table_capacity").asUint();
        result.seconds = payload.numberOr("seconds", 0.0);
        result.groupSeconds = payload.numberOr("group_seconds", 0.0);
        result.sharedTraversal =
            payload.contains("shared_traversal") &&
            payload.at("shared_traversal").asBool();
    }
    result.missPercent = payload.numberOr("miss_percent", 0.0);
    return LoadOutcome{LoadStatus::Hit, std::move(result)};
}

Result<void>
ResultStore::store(const std::string &key,
                   const StoredResult &result) const
{
    Json payload = payloadJson(key, result);
    Json entry = Json::object();
    entry.set("checksum",
              specHashHex(specBytesHash(payload.dump())));
    entry.set("payload", std::move(payload));
    const auto written =
        writeFileAtomic(pathFor(key), entry.dump(2) + "\n");
    if (written.ok())
        maybeSweepCacheDirectory(_directory);
    return written;
}

} // namespace ibp
