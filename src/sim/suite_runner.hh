/**
 * @file
 * Run predictor configurations across the benchmark suite.
 *
 * A SuiteRunner acquires the synthetic traces of a set of benchmarks
 * (in parallel, through the on-disk trace cache when one is
 * configured), then evaluates (configuration x benchmark) grids in
 * parallel across hardware threads - by default feeding all columns
 * of a benchmark from a single trace traversal (simulateMany). It
 * knows the paper's averaging groups (Table 3) and can render
 * results as per-benchmark or per-group ResultTables, which is how
 * every bench binary reproduces its figure or table.
 *
 * Fault tolerance (docs/ROBUSTNESS.md): every cell runs isolated -
 * an error in one (configuration x benchmark) pair is caught,
 * retried under a RetryPolicy when transient, cancelled by a
 * watchdog past its deadline, and on permanent failure recorded as a
 * FailedCell while the rest of the grid completes. Completed cells
 * can be journalled to a CheckpointJournal so a killed sweep resumes
 * where it died.
 */

#ifndef IBP_SIM_SUITE_RUNNER_HH
#define IBP_SIM_SUITE_RUNNER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/predictor.hh"
#include "report/run_metrics.hh"
#include "robust/checkpoint.hh"
#include "robust/retry.hh"
#include "sim/executor.hh"
#include "sim/simulator.hh"
#include "synth/benchmark_suite.hh"
#include "util/format.hh"

namespace ibp {

/** Builds a fresh predictor instance for one simulation run. */
using PredictorFactory =
    std::function<std::unique_ptr<IndirectPredictor>()>;

/** One labelled configuration of a sweep. */
struct SweepColumn
{
    std::string label;
    PredictorFactory make;
    /**
     * Canonical content hash of the configuration `make` builds
     * (core/spec_codec.hh), or 0 when unknown. A keyed column's
     * cells are served by the content-addressed result store on
     * warm runs; an unkeyed column always simulates. Use the
     * helpers in sim/spec_columns.hh to build keyed columns -
     * hand-rolled factories must guarantee the hash describes
     * EXACTLY what the factory constructs, or the store would
     * serve a different predictor's counters.
     */
    std::uint64_t specHash = 0;
};

/** One cell that failed permanently (isolation kept the grid alive). */
struct FailedCell
{
    std::string column;
    std::string benchmark;
    std::string error;
    ErrorKind kind = ErrorKind::Permanent;
    unsigned attempts = 1;
};

/** Misprediction rates of a sweep: rates[column][benchmark], in %. */
class GridResult
{
  public:
    void set(const std::string &column, const std::string &benchmark,
             double missPercent);
    double get(const std::string &column,
               const std::string &benchmark) const;
    bool has(const std::string &column,
             const std::string &benchmark) const;

    /** Record a cell that could not be computed. */
    void setFailed(FailedCell cell);

    const std::vector<FailedCell> &failures() const
    {
        return _failures;
    }

    /** True when at least one cell failed. */
    bool partial() const { return !_failures.empty(); }

    /**
     * Arithmetic mean over the members of @p members that are
     * present. A partial grid averages what it has; NaN when no
     * member is present at all.
     */
    double average(const std::string &column,
                   const std::vector<std::string> &members) const;

    /** How many of @p members have a value in @p column. */
    std::size_t presentCount(
        const std::string &column,
        const std::vector<std::string> &members) const;

  private:
    std::map<std::string, std::map<std::string, double>> _rates;
    std::vector<FailedCell> _failures;
};

/**
 * Mutable state shared by the run() calls of one experiment: where
 * telemetry and failures go, the retry/deadline policy, the optional
 * checkpoint journal, and the grid-id counter that keeps repeated
 * run() calls distinguishable inside the journal.
 */
struct RunSession
{
    RunMetrics *metrics = nullptr;
    CheckpointJournal *checkpoint = nullptr;
    RetryPolicy retry;
    /** Next grid id; run() consumes one per call. */
    unsigned nextGridId = 0;
    /**
     * Drain flag (may be null). While it reads true, run() stops
     * STARTING cells: in-flight cells finish normally (and are
     * journalled), unstarted cells are left absent from the grid -
     * neither completed nor failed - so a drained sweep resumes
     * from its checkpoint journal exactly where it stopped. Used by
     * the ibpd daemon's graceful SIGTERM drain (docs/SERVICE.md).
     */
    const std::atomic<bool> *abort = nullptr;
    /**
     * Invoked once per resolved cell - completed, failed, or
     * journal-restored - from whichever worker thread resolved it.
     * The serve layer streams per-cell progress events with this;
     * it must not block for long or throw.
     */
    std::function<void()> onCellFinished;
    /**
     * Allow the single-pass multi-predictor engine (simulateMany):
     * all pending columns of a benchmark are fed from one trace
     * traversal, and any failure (injected fault, factory error,
     * watchdog cancellation) falls back to the per-cell isolated
     * path, so results and isolation semantics are identical either
     * way (docs/PERFORMANCE.md). Tests set this to false to force
     * the per-cell reference path.
     */
    bool singlePass = true;
    /**
     * Grid sharding (docs/SERVICE.md): when shardCount > 1 AND a
     * result store is armed, run() simulates only the cells whose
     * benchmark this shard owns - owner = (benchmark index +
     * grid id) % shardCount - persisting them into the store;
     * foreign keyed cells stay absent from the grid (a later merge
     * pass restores everything from the store), and unkeyed cells
     * are left for the merge outright (they cannot flow through the
     * store). Sharding on the BENCHMARK axis keeps every fused
     * chunk (one benchmark, all pending columns) whole, so the
     * shared trace traversal and the equal-config predictor dedup
     * survive the split; the grid-id rotation keeps repeated run()
     * calls from starving the same shard. With no store armed the
     * shard spec is ignored and every cell simulates (correct,
     * just unshared).
     */
    unsigned shardIndex = 0;
    unsigned shardCount = 1;
    /**
     * Work stealing: after finishing its own partition, claim and
     * simulate foreign keyed cells that no peer has stored or
     * claimed yet, so a crashed or slow shard degrades the fan-out
     * to slack, never to missing cells.
     */
    bool shardSteal = false;
    /**
     * Acquire an exclusive store claim (ResultStore::tryClaim) per
     * keyed cell before simulating it; cells claimed by a live peer
     * are deferred and served from the store once the owner
     * persists them. This is what lets concurrent shards - and
     * concurrent OVERLAPPING requests - simulate every shared cell
     * exactly once. Ignored when no store is armed.
     */
    bool cellClaims = false;
};

/** How this runner's traces were obtained (cache vs generator). */
struct TraceSourceStats
{
    /** Traces produced by running the generator (cache misses). */
    unsigned generated = 0;
    /** Traces served from the on-disk trace cache (all transports). */
    unsigned cacheHits = 0;
    /** Cache hits served zero-copy from an mmap'ed `.ibpm` entry. */
    unsigned mmapHits = 0;
    /** Cache hits parsed from a legacy `.ibpt` stream entry. */
    unsigned streamHits = 0;
    /** Wall time of the whole acquisition phase, in seconds. */
    double seconds = 0.0;
};

class SuiteRunner
{
  public:
    /**
     * @param benchmarks        benchmark names to simulate;
     * @param emitConditionals  include conditional-branch records in
     *                          the generated traces (needed only by
     *                          predictors that consume them).
     *
     * Traces are acquired *asynchronously* on the process-wide
     * executor (Executor::global(), sized by simulationThreads()):
     * the constructor validates the benchmark names, spawns one
     * acquisition task per benchmark and returns immediately. Each
     * task first consults the on-disk trace cache when one is
     * configured (TraceCache::global(), i.e. `--trace-cache` /
     * IBP_TRACE_CACHE), and only misses run the generator - under
     * the session-independent retry policy from the environment -
     * then populate the cache for the next run. run() overlaps
     * simulation with acquisition (a benchmark's sweep group starts
     * the moment its trace lands); the accessors below block until
     * acquisition completes, and the destructor waits for any tasks
     * still in flight. A benchmark whose trace cannot be obtained
     * stays in benchmarks() but every later run() marks its cells
     * failed instead of aborting the suite.
     */
    explicit SuiteRunner(std::vector<std::string> benchmarks,
                         bool emitConditionals = false);

    ~SuiteRunner();

    /** The paper's 13-program AVG set (OO + C). */
    static SuiteRunner avgSuite(bool emitConditionals = false);

    /** All 17 programs. */
    static SuiteRunner fullSuite(bool emitConditionals = false);

    const std::vector<std::string> &benchmarks() const
    {
        return _names;
    }

    /** Blocks until acquisition completes. */
    const Trace &trace(const std::string &benchmark) const;

    /** Benchmark name -> error, for traces that failed to generate.
     *  Blocks until acquisition completes. */
    const std::map<std::string, RunError> &failedBenchmarks() const;

    /**
     * Where this runner's traces came from. A warm cache shows
     * generated == 0; run() publishes these counters into the
     * session's RunMetrics once per runner, so artifacts record
     * whether a run paid the generation cost. Blocks until
     * acquisition completes.
     */
    const TraceSourceStats &traceSourceStats() const;

    /**
     * Simulate every (column x benchmark) pair, in parallel, with
     * per-cell isolation governed by @p session (retries, deadline
     * watchdog, checkpoint lookup/append, telemetry and failure
     * records). Consumes one grid id from the session.
     */
    GridResult run(const std::vector<SweepColumn> &columns,
                   RunSession &session) const;

    /**
     * Convenience overload: a throwaway session with the environment
     * retry policy, no checkpoint, and @p metrics as the sink.
     */
    GridResult run(const std::vector<SweepColumn> &columns,
                   RunMetrics *metrics = nullptr) const;

    /** Run a single configuration, returning benchmark -> miss %. */
    std::map<std::string, double>
    runOne(const PredictorFactory &factory,
           RunMetrics *metrics = nullptr) const;

    /**
     * Render a grid as a table with one row per averaging group that
     * is fully covered by this runner's benchmarks, in the paper's
     * order (AVG, AVG-OO, AVG-C, AVG-100, AVG-200, AVG-infreq).
     * Cells whose group has no surviving member stay blank.
     */
    ResultTable groupTable(const std::string &title,
                           const GridResult &grid,
                           const std::vector<SweepColumn> &columns) const;

    /** Render a grid with one row per benchmark plus group rows. */
    ResultTable benchmarkTable(const std::string &title,
                               const GridResult &grid,
                               const std::vector<SweepColumn> &columns)
        const;

    /** Group name -> members, restricted to covered groups. */
    std::vector<std::pair<std::string, std::vector<std::string>>>
    coveredGroups() const;

  private:
    /**
     * Per-benchmark acquisition slot, index-aligned with _names.
     * `continuations` holds callbacks registered by run() for
     * benchmarks still in flight; they fire (outside the lock) the
     * moment the trace lands, receiving a pointer into _traces -
     * nullptr when acquisition failed.
     */
    struct AcquireSlot
    {
        bool done = false;
        const Trace *trace = nullptr;
        std::vector<std::function<void(const Trace *)>> continuations;
    };

    /** Acquisition task epilogue: publish one benchmark's outcome. */
    void finishAcquire(std::size_t index, bool ok, bool from_cache,
                       Trace trace, const RunError &error);

    /**
     * Run @p continuation with benchmark @p index's trace: inline
     * right now if acquisition already finished, otherwise when it
     * does (on the finishing task's thread).
     */
    void onTraceReady(
        std::size_t index,
        std::function<void(const Trace *)> continuation) const;

    /** Block until every acquisition task published its outcome. */
    void waitAcquisition() const;

    std::vector<std::string> _names;
    /** Snapshot of the constructor flag: together with a benchmark
     *  name it reproduces the trace cache key, which run() folds
     *  into result-store cell keys without waiting for the trace. */
    bool _emitConditionals = false;
    std::map<std::string, Trace> _traces;
    std::map<std::string, RunError> _failedTraces;
    TraceSourceStats _traceStats;
    // One-shot publication latch for the trace-source telemetry;
    // its presence also makes SuiteRunner non-copyable, which is
    // intentional (runners hold the full trace corpus).
    mutable std::atomic<bool> _traceStatsPublished{false};

    /** Guards _acquire/_traces/_failedTraces/_traceStats until
     *  acquisition completes (immutable afterwards). */
    mutable std::mutex _acquireMutex;
    mutable std::condition_variable _acquireCv;
    mutable std::vector<AcquireSlot> _acquire;
    mutable std::size_t _acquireRemaining = 0;
    std::chrono::steady_clock::time_point _acquireStart;

    /**
     * The in-flight acquisition tasks. Declared LAST so it is
     * destroyed FIRST: the Batch destructor waits for the tasks,
     * which reference every member above.
     */
    mutable std::unique_ptr<Executor::Batch> _acquireBatch;
};

/**
 * Number of worker threads used by SuiteRunner::run. Overridable via
 * the IBP_THREADS environment variable (clamped to >= 1); defaults
 * to the hardware concurrency.
 */
unsigned simulationThreads();

} // namespace ibp

#endif // IBP_SIM_SUITE_RUNNER_HH
