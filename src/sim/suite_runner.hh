/**
 * @file
 * Run predictor configurations across the benchmark suite.
 *
 * A SuiteRunner generates and caches the synthetic traces of a set of
 * benchmarks, then evaluates (configuration x benchmark) grids in
 * parallel across hardware threads. It knows the paper's averaging
 * groups (Table 3) and can render results as per-benchmark or
 * per-group ResultTables, which is how every bench binary reproduces
 * its figure or table.
 */

#ifndef IBP_SIM_SUITE_RUNNER_HH
#define IBP_SIM_SUITE_RUNNER_HH

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/predictor.hh"
#include "report/run_metrics.hh"
#include "sim/simulator.hh"
#include "synth/benchmark_suite.hh"
#include "util/format.hh"

namespace ibp {

/** Builds a fresh predictor instance for one simulation run. */
using PredictorFactory =
    std::function<std::unique_ptr<IndirectPredictor>()>;

/** One labelled configuration of a sweep. */
struct SweepColumn
{
    std::string label;
    PredictorFactory make;
};

/** Misprediction rates of a sweep: rates[column][benchmark], in %. */
class GridResult
{
  public:
    void set(const std::string &column, const std::string &benchmark,
             double missPercent);
    double get(const std::string &column,
               const std::string &benchmark) const;
    bool has(const std::string &column,
             const std::string &benchmark) const;

    /** Arithmetic mean over @p members (all must be present). */
    double average(const std::string &column,
                   const std::vector<std::string> &members) const;

  private:
    std::map<std::string, std::map<std::string, double>> _rates;
};

class SuiteRunner
{
  public:
    /**
     * @param benchmarks        benchmark names to simulate;
     * @param emitConditionals  include conditional-branch records in
     *                          the generated traces (needed only by
     *                          predictors that consume them).
     */
    explicit SuiteRunner(std::vector<std::string> benchmarks,
                         bool emitConditionals = false);

    /** The paper's 13-program AVG set (OO + C). */
    static SuiteRunner avgSuite(bool emitConditionals = false);

    /** All 17 programs. */
    static SuiteRunner fullSuite(bool emitConditionals = false);

    const std::vector<std::string> &benchmarks() const
    {
        return _names;
    }
    const Trace &trace(const std::string &benchmark) const;

    /**
     * Simulate every (column x benchmark) pair, in parallel. When
     * @p metrics is non-null, one CellMetrics record per pair plus
     * the grid's wall time and worker count are collected into it.
     */
    GridResult run(const std::vector<SweepColumn> &columns,
                   RunMetrics *metrics = nullptr) const;

    /** Run a single configuration, returning benchmark -> miss %. */
    std::map<std::string, double>
    runOne(const PredictorFactory &factory,
           RunMetrics *metrics = nullptr) const;

    /**
     * Render a grid as a table with one row per averaging group that
     * is fully covered by this runner's benchmarks, in the paper's
     * order (AVG, AVG-OO, AVG-C, AVG-100, AVG-200, AVG-infreq).
     */
    ResultTable groupTable(const std::string &title,
                           const GridResult &grid,
                           const std::vector<SweepColumn> &columns) const;

    /** Render a grid with one row per benchmark plus group rows. */
    ResultTable benchmarkTable(const std::string &title,
                               const GridResult &grid,
                               const std::vector<SweepColumn> &columns)
        const;

    /** Group name -> members, restricted to covered groups. */
    std::vector<std::pair<std::string, std::vector<std::string>>>
    coveredGroups() const;

  private:
    std::vector<std::string> _names;
    std::map<std::string, Trace> _traces;
};

/**
 * Number of worker threads used by SuiteRunner::run. Overridable via
 * the IBP_THREADS environment variable (clamped to >= 1); defaults
 * to the hardware concurrency.
 */
unsigned simulationThreads();

} // namespace ibp

#endif // IBP_SIM_SUITE_RUNNER_HH
