#include "sim/suite_runner.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "util/logging.hh"
#include "util/stats.hh"

namespace ibp {

void
GridResult::set(const std::string &column, const std::string &benchmark,
                double miss_percent)
{
    _rates[column][benchmark] = miss_percent;
}

double
GridResult::get(const std::string &column,
                const std::string &benchmark) const
{
    const auto col = _rates.find(column);
    IBP_ASSERT(col != _rates.end(), "unknown column '%s'",
               column.c_str());
    const auto cell = col->second.find(benchmark);
    IBP_ASSERT(cell != col->second.end(),
               "column '%s' has no benchmark '%s'", column.c_str(),
               benchmark.c_str());
    return cell->second;
}

bool
GridResult::has(const std::string &column,
                const std::string &benchmark) const
{
    const auto col = _rates.find(column);
    return col != _rates.end() &&
           col->second.find(benchmark) != col->second.end();
}

double
GridResult::average(const std::string &column,
                    const std::vector<std::string> &members) const
{
    std::vector<double> rates;
    rates.reserve(members.size());
    for (const auto &member : members)
        rates.push_back(get(column, member));
    return mean(rates);
}

SuiteRunner::SuiteRunner(std::vector<std::string> benchmarks,
                         bool emit_conditionals)
    : _names(std::move(benchmarks))
{
    for (const auto &name : _names) {
        _traces.emplace(name,
                        generateBenchmarkTrace(name, emit_conditionals));
    }
}

SuiteRunner
SuiteRunner::avgSuite(bool emit_conditionals)
{
    return SuiteRunner(benchmarkGroups().avg, emit_conditionals);
}

SuiteRunner
SuiteRunner::fullSuite(bool emit_conditionals)
{
    std::vector<std::string> names = benchmarkGroups().avg;
    const auto &infrequent = benchmarkGroups().infrequent;
    names.insert(names.end(), infrequent.begin(), infrequent.end());
    return SuiteRunner(std::move(names), emit_conditionals);
}

const Trace &
SuiteRunner::trace(const std::string &benchmark) const
{
    const auto it = _traces.find(benchmark);
    IBP_ASSERT(it != _traces.end(), "benchmark '%s' not loaded",
               benchmark.c_str());
    return it->second;
}

unsigned
simulationThreads()
{
    if (const char *env = std::getenv("IBP_THREADS")) {
        // Clamp to >= 1 so IBP_THREADS=0 (or garbage) still yields
        // a usable serial run instead of silently ignoring the
        // override.
        return static_cast<unsigned>(
            std::max(1L, std::atol(env)));
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 4 : hw;
}

GridResult
SuiteRunner::run(const std::vector<SweepColumn> &columns,
                 RunMetrics *metrics) const
{
    struct Job
    {
        const SweepColumn *column;
        const Trace *trace;
        const std::string *benchmark;
        double missPercent = 0.0;
    };

    std::vector<Job> jobs;
    jobs.reserve(columns.size() * _names.size());
    for (const auto &column : columns) {
        for (const auto &name : _names)
            jobs.push_back(Job{&column, &trace(name), &name});
    }

    const auto grid_start = std::chrono::steady_clock::now();
    std::atomic<std::size_t> next{0};
    const auto worker = [&]() {
        while (true) {
            const std::size_t index =
                next.fetch_add(1, std::memory_order_relaxed);
            if (index >= jobs.size())
                return;
            Job &job = jobs[index];
            auto predictor = job.column->make();
            const SimResult result = simulate(*predictor, *job.trace);
            job.missPercent = result.missPercent();
            if (metrics) {
                // One record per finished cell - never inside the
                // per-branch simulation loop.
                CellMetrics cell;
                cell.column = job.column->label;
                cell.benchmark = *job.benchmark;
                cell.branches = result.branches;
                cell.seconds = result.seconds;
                cell.tableOccupancy = result.tableOccupancy;
                cell.tableCapacity = result.tableCapacity;
                metrics->recordCell(cell);
            }
        }
    };

    const unsigned thread_count =
        std::min<std::size_t>(simulationThreads(), jobs.size());
    if (thread_count <= 1) {
        worker();
    } else {
        std::vector<std::thread> threads;
        threads.reserve(thread_count);
        for (unsigned t = 0; t < thread_count; ++t)
            threads.emplace_back(worker);
        for (auto &thread : threads)
            thread.join();
    }

    if (metrics) {
        metrics->recordThreads(std::max(1u, thread_count));
        metrics->recordRunWindow(
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - grid_start)
                .count());
    }

    GridResult grid;
    for (const auto &job : jobs)
        grid.set(job.column->label, *job.benchmark, job.missPercent);
    return grid;
}

std::map<std::string, double>
SuiteRunner::runOne(const PredictorFactory &factory,
                    RunMetrics *metrics) const
{
    const GridResult grid =
        run({SweepColumn{"only", factory}}, metrics);
    std::map<std::string, double> rates;
    for (const auto &name : _names)
        rates[name] = grid.get("only", name);
    return rates;
}

std::vector<std::pair<std::string, std::vector<std::string>>>
SuiteRunner::coveredGroups() const
{
    const auto &groups = benchmarkGroups();
    const auto covered = [&](const std::vector<std::string> &members) {
        for (const auto &member : members) {
            if (_traces.find(member) == _traces.end())
                return false;
        }
        return !members.empty();
    };

    std::vector<std::pair<std::string, std::vector<std::string>>> out;
    if (covered(groups.avg))
        out.emplace_back("AVG", groups.avg);
    if (covered(groups.oo))
        out.emplace_back("AVG-OO", groups.oo);
    if (covered(groups.c))
        out.emplace_back("AVG-C", groups.c);
    if (covered(groups.avg100))
        out.emplace_back("AVG-100", groups.avg100);
    if (covered(groups.avg200))
        out.emplace_back("AVG-200", groups.avg200);
    if (covered(groups.infrequent))
        out.emplace_back("AVG-infreq", groups.infrequent);
    return out;
}

ResultTable
SuiteRunner::groupTable(const std::string &title, const GridResult &grid,
                        const std::vector<SweepColumn> &columns) const
{
    ResultTable table(title, "group");
    for (const auto &column : columns)
        table.addColumn(column.label);
    for (const auto &[group, members] : coveredGroups()) {
        const unsigned row = table.addRow(group);
        for (unsigned c = 0; c < columns.size(); ++c)
            table.set(row, c, grid.average(columns[c].label, members));
    }
    return table;
}

ResultTable
SuiteRunner::benchmarkTable(const std::string &title,
                            const GridResult &grid,
                            const std::vector<SweepColumn> &columns) const
{
    ResultTable table(title, "benchmark");
    for (const auto &column : columns)
        table.addColumn(column.label);
    for (const auto &[group, members] : coveredGroups()) {
        const unsigned row = table.addRow(group);
        for (unsigned c = 0; c < columns.size(); ++c)
            table.set(row, c, grid.average(columns[c].label, members));
    }
    for (const auto &name : _names) {
        const unsigned row = table.addRow(name);
        for (unsigned c = 0; c < columns.size(); ++c)
            table.set(row, c, grid.get(columns[c].label, name));
    }
    return table;
}

} // namespace ibp
