#include "sim/suite_runner.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdlib>
#include <limits>
#include <set>
#include <system_error>
#include <thread>

#include "robust/fault_injection.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace ibp {

namespace {

std::int64_t
nowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

void
GridResult::set(const std::string &column, const std::string &benchmark,
                double miss_percent)
{
    _rates[column][benchmark] = miss_percent;
}

double
GridResult::get(const std::string &column,
                const std::string &benchmark) const
{
    const auto col = _rates.find(column);
    IBP_ASSERT(col != _rates.end(), "unknown column '%s'",
               column.c_str());
    const auto cell = col->second.find(benchmark);
    IBP_ASSERT(cell != col->second.end(),
               "column '%s' has no benchmark '%s'", column.c_str(),
               benchmark.c_str());
    return cell->second;
}

bool
GridResult::has(const std::string &column,
                const std::string &benchmark) const
{
    const auto col = _rates.find(column);
    return col != _rates.end() &&
           col->second.find(benchmark) != col->second.end();
}

void
GridResult::setFailed(FailedCell cell)
{
    _failures.push_back(std::move(cell));
}

std::size_t
GridResult::presentCount(const std::string &column,
                         const std::vector<std::string> &members) const
{
    std::size_t count = 0;
    for (const auto &member : members) {
        if (has(column, member))
            ++count;
    }
    return count;
}

double
GridResult::average(const std::string &column,
                    const std::vector<std::string> &members) const
{
    // Partial grids average what survived: failed members are
    // skipped rather than poisoning the group. Callers that must
    // not silently degrade check presentCount() first.
    std::vector<double> rates;
    rates.reserve(members.size());
    for (const auto &member : members) {
        if (has(column, member))
            rates.push_back(get(column, member));
    }
    if (rates.empty())
        return std::numeric_limits<double>::quiet_NaN();
    return mean(rates);
}

SuiteRunner::SuiteRunner(std::vector<std::string> benchmarks,
                         bool emit_conditionals)
    : _names(std::move(benchmarks))
{
    const RetryPolicy policy = retryPolicyFromEnv();
    for (const auto &name : _names) {
        auto made = runWithRetries(policy, [&](unsigned attempt) {
            FaultInjector::global().check("trace", name, attempt);
            return generateBenchmarkTrace(name, emit_conditionals);
        });
        if (made.ok()) {
            _traces.emplace(name, std::move(made).value());
        } else {
            warn("trace generation for '%s' failed: %s", name.c_str(),
                 made.error().describe().c_str());
            _failedTraces.emplace(name, made.error());
        }
    }
}

SuiteRunner
SuiteRunner::avgSuite(bool emit_conditionals)
{
    return SuiteRunner(benchmarkGroups().avg, emit_conditionals);
}

SuiteRunner
SuiteRunner::fullSuite(bool emit_conditionals)
{
    std::vector<std::string> names = benchmarkGroups().avg;
    const auto &infrequent = benchmarkGroups().infrequent;
    names.insert(names.end(), infrequent.begin(), infrequent.end());
    return SuiteRunner(std::move(names), emit_conditionals);
}

const Trace &
SuiteRunner::trace(const std::string &benchmark) const
{
    const auto it = _traces.find(benchmark);
    IBP_ASSERT(it != _traces.end(), "benchmark '%s' not loaded",
               benchmark.c_str());
    return it->second;
}

unsigned
simulationThreads()
{
    if (const char *env = std::getenv("IBP_THREADS")) {
        // Clamp to >= 1 so IBP_THREADS=0 (or garbage) still yields
        // a usable serial run instead of silently ignoring the
        // override.
        return static_cast<unsigned>(
            std::max(1L, std::atol(env)));
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 4 : hw;
}

GridResult
SuiteRunner::run(const std::vector<SweepColumn> &columns,
                 RunSession &session) const
{
    const unsigned grid_id = session.nextGridId++;
    RunMetrics *metrics = session.metrics;
    CheckpointJournal *journal = session.checkpoint;
    const std::int64_t deadline_ns = static_cast<std::int64_t>(
        session.retry.cellDeadlineSeconds * 1e9);

    struct Job
    {
        const SweepColumn *column;
        const Trace *trace;
        const std::string *benchmark;
        double missPercent = 0.0;
        bool failed = false;
        RunError error;
    };

    GridResult grid;
    std::vector<Job> jobs;
    jobs.reserve(columns.size() * _names.size());
    for (const auto &column : columns) {
        for (const auto &name : _names) {
            // A benchmark whose trace never materialised fails every
            // cell up front - no point retrying the simulation.
            const auto failed_trace = _failedTraces.find(name);
            if (failed_trace != _failedTraces.end()) {
                const RunError &cause = failed_trace->second;
                grid.setFailed(FailedCell{column.label, name,
                                          cause.describe(), cause.kind,
                                          cause.attempts});
                if (metrics) {
                    metrics->recordFailure(
                        FailureRecord{column.label, name,
                                      cause.describe(),
                                      errorKindName(cause.kind),
                                      cause.attempts});
                }
                continue;
            }
            // Resume: a journalled cell is restored verbatim, not
            // recomputed (it carries the full-precision miss rate).
            if (journal) {
                const auto restored =
                    journal->lookup(grid_id, column.label, name);
                if (restored) {
                    grid.set(column.label, name, *restored);
                    continue;
                }
            }
            jobs.push_back(
                Job{&column, &trace(name), &name, 0.0, false, {}});
        }
    }

    const unsigned thread_count = static_cast<unsigned>(
        std::min<std::size_t>(simulationThreads(), jobs.size()));

    // One slot per worker carries the watchdog state: the deadline
    // of the attempt the worker is currently running and the cancel
    // flag simulate() polls.
    struct WorkerSlot
    {
        std::atomic<std::int64_t> deadlineNs{0};
        std::atomic<bool> cancel{false};
    };
    std::vector<WorkerSlot> slots(std::max(1u, thread_count));

    std::mutex wd_mutex;
    std::condition_variable wd_cv;
    bool wd_stop = false;
    std::thread watchdog;
    if (deadline_ns > 0 && !jobs.empty()) {
        watchdog = std::thread([&]() {
            std::unique_lock<std::mutex> lock(wd_mutex);
            while (!wd_stop) {
                wd_cv.wait_for(lock, std::chrono::milliseconds(20));
                const std::int64_t now = nowNs();
                for (auto &slot : slots) {
                    const std::int64_t deadline =
                        slot.deadlineNs.load(std::memory_order_relaxed);
                    if (deadline != 0 && now >= deadline)
                        slot.cancel.store(true,
                                          std::memory_order_relaxed);
                }
            }
        });
    }

    const auto grid_start = std::chrono::steady_clock::now();
    std::atomic<std::size_t> next{0};
    const auto worker = [&](unsigned slot_index) {
        WorkerSlot &slot = slots[slot_index];
        while (true) {
            const std::size_t index =
                next.fetch_add(1, std::memory_order_relaxed);
            if (index >= jobs.size())
                return;
            Job &job = jobs[index];
            const std::string fault_key = std::to_string(grid_id) +
                                          "/" + job.column->label +
                                          "/" + *job.benchmark;
            auto outcome =
                runWithRetries(session.retry, [&](unsigned attempt) {
                    slot.cancel.store(false,
                                      std::memory_order_relaxed);
                    if (deadline_ns > 0) {
                        slot.deadlineNs.store(
                            nowNs() + deadline_ns,
                            std::memory_order_relaxed);
                    }
                    // The deadline must clear on every exit path or
                    // the watchdog would cancel the *next* cell.
                    struct ClearDeadline
                    {
                        std::atomic<std::int64_t> &deadline;
                        ~ClearDeadline()
                        {
                            deadline.store(0,
                                           std::memory_order_relaxed);
                        }
                    } clear{slot.deadlineNs};
                    FaultInjector::global().check("sim", fault_key,
                                                  attempt);
                    auto predictor = job.column->make();
                    if (!predictor) {
                        throw RunException(RunError::permanent(
                            "predictor factory for '" +
                            job.column->label + "' returned null"));
                    }
                    SimOptions options;
                    options.cancel = &slot.cancel;
                    return simulate(*predictor, *job.trace, options);
                });
            if (!outcome.ok()) {
                job.failed = true;
                job.error = outcome.error();
                if (metrics) {
                    metrics->recordFailure(FailureRecord{
                        job.column->label, *job.benchmark,
                        job.error.message,
                        errorKindName(job.error.kind),
                        job.error.attempts});
                }
                continue;
            }
            const SimResult &result = outcome.value();
            job.missPercent = result.missPercent();
            if (metrics) {
                // One record per finished cell - never inside the
                // per-branch simulation loop.
                CellMetrics cell;
                cell.column = job.column->label;
                cell.benchmark = *job.benchmark;
                cell.branches = result.branches;
                cell.seconds = result.seconds;
                cell.tableOccupancy = result.tableOccupancy;
                cell.tableCapacity = result.tableCapacity;
                metrics->recordCell(cell);
            }
            if (journal) {
                const auto appended = journal->append(CheckpointCell{
                    grid_id, job.column->label, *job.benchmark,
                    job.missPercent});
                if (!appended.ok()) {
                    warn("checkpoint append failed for %s: %s",
                         fault_key.c_str(),
                         appended.error().describe().c_str());
                }
            }
        }
    };

    unsigned threads_used = 1;
    if (thread_count <= 1) {
        worker(0);
    } else {
        std::vector<std::thread> threads;
        threads.reserve(thread_count);
        try {
            for (unsigned t = 0; t < thread_count; ++t)
                threads.emplace_back(worker, t);
        } catch (const std::system_error &exception) {
            // Thread creation can fail under resource pressure; the
            // workers already spawned will drain the whole queue, so
            // degrade instead of dying.
            warn("thread construction failed after %zu of %u workers "
                 "(%s); continuing degraded",
                 threads.size(), thread_count, exception.what());
        }
        if (threads.empty()) {
            warn("falling back to serial execution");
            worker(0);
        }
        threads_used = std::max<std::size_t>(1, threads.size());
        for (auto &thread : threads)
            thread.join();
    }

    if (watchdog.joinable()) {
        {
            std::lock_guard<std::mutex> lock(wd_mutex);
            wd_stop = true;
        }
        wd_cv.notify_one();
        watchdog.join();
    }

    if (metrics) {
        metrics->recordThreads(threads_used);
        metrics->recordRunWindow(
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - grid_start)
                .count());
    }

    for (auto &job : jobs) {
        if (job.failed) {
            grid.setFailed(FailedCell{
                job.column->label, *job.benchmark, job.error.message,
                job.error.kind, job.error.attempts});
        } else {
            grid.set(job.column->label, *job.benchmark,
                     job.missPercent);
        }
    }
    return grid;
}

GridResult
SuiteRunner::run(const std::vector<SweepColumn> &columns,
                 RunMetrics *metrics) const
{
    RunSession session;
    session.metrics = metrics;
    session.retry = retryPolicyFromEnv();
    return run(columns, session);
}

std::map<std::string, double>
SuiteRunner::runOne(const PredictorFactory &factory,
                    RunMetrics *metrics) const
{
    const GridResult grid =
        run({SweepColumn{"only", factory}}, metrics);
    std::map<std::string, double> rates;
    for (const auto &name : _names) {
        if (grid.has("only", name))
            rates[name] = grid.get("only", name);
    }
    return rates;
}

std::vector<std::pair<std::string, std::vector<std::string>>>
SuiteRunner::coveredGroups() const
{
    const auto &groups = benchmarkGroups();
    // Coverage is about what this runner was *asked* to simulate,
    // not what survived trace generation: a group whose member
    // failed still renders (partially) instead of vanishing and
    // silently reshaping every table.
    const std::set<std::string> requested(_names.begin(),
                                          _names.end());
    const auto covered = [&](const std::vector<std::string> &members) {
        for (const auto &member : members) {
            if (requested.find(member) == requested.end())
                return false;
        }
        return !members.empty();
    };

    std::vector<std::pair<std::string, std::vector<std::string>>> out;
    if (covered(groups.avg))
        out.emplace_back("AVG", groups.avg);
    if (covered(groups.oo))
        out.emplace_back("AVG-OO", groups.oo);
    if (covered(groups.c))
        out.emplace_back("AVG-C", groups.c);
    if (covered(groups.avg100))
        out.emplace_back("AVG-100", groups.avg100);
    if (covered(groups.avg200))
        out.emplace_back("AVG-200", groups.avg200);
    if (covered(groups.infrequent))
        out.emplace_back("AVG-infreq", groups.infrequent);
    return out;
}

ResultTable
SuiteRunner::groupTable(const std::string &title, const GridResult &grid,
                        const std::vector<SweepColumn> &columns) const
{
    ResultTable table(title, "group");
    for (const auto &column : columns)
        table.addColumn(column.label);
    for (const auto &[group, members] : coveredGroups()) {
        const unsigned row = table.addRow(group);
        for (unsigned c = 0; c < columns.size(); ++c) {
            // Blank cell when the whole group failed; a partial
            // average is still rendered (ROBUSTNESS.md documents
            // the degraded semantics).
            if (grid.presentCount(columns[c].label, members) == 0)
                continue;
            table.set(row, c, grid.average(columns[c].label, members));
        }
    }
    return table;
}

ResultTable
SuiteRunner::benchmarkTable(const std::string &title,
                            const GridResult &grid,
                            const std::vector<SweepColumn> &columns) const
{
    ResultTable table(title, "benchmark");
    for (const auto &column : columns)
        table.addColumn(column.label);
    for (const auto &[group, members] : coveredGroups()) {
        const unsigned row = table.addRow(group);
        for (unsigned c = 0; c < columns.size(); ++c) {
            if (grid.presentCount(columns[c].label, members) == 0)
                continue;
            table.set(row, c, grid.average(columns[c].label, members));
        }
    }
    for (const auto &name : _names) {
        const unsigned row = table.addRow(name);
        for (unsigned c = 0; c < columns.size(); ++c) {
            if (grid.has(columns[c].label, name))
                table.set(row, c, grid.get(columns[c].label, name));
        }
    }
    return table;
}

} // namespace ibp
