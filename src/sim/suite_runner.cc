#include "sim/suite_runner.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdlib>
#include <limits>
#include <set>
#include <system_error>
#include <thread>

#include "core/simd.hh"
#include "core/sweep_kernel.hh"
#include "robust/fault_injection.hh"
#include "sim/result_store.hh"
#include "trace/trace_cache.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace ibp {

namespace {

std::int64_t
nowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** How long a deferred cell waits for its claim owner to persist it
 *  before this runner simulates it anyway (IBP_CLAIM_WAIT seconds;
 *  duplicate simulations are benign, the store write is atomic). */
double
claimWaitCeilingSeconds()
{
    if (const char *env = std::getenv("IBP_CLAIM_WAIT")) {
        const double parsed = std::atof(env);
        if (parsed > 0.0)
            return parsed;
    }
    return 300.0;
}

} // namespace

void
GridResult::set(const std::string &column, const std::string &benchmark,
                double miss_percent)
{
    _rates[column][benchmark] = miss_percent;
}

double
GridResult::get(const std::string &column,
                const std::string &benchmark) const
{
    const auto col = _rates.find(column);
    IBP_ASSERT(col != _rates.end(), "unknown column '%s'",
               column.c_str());
    const auto cell = col->second.find(benchmark);
    IBP_ASSERT(cell != col->second.end(),
               "column '%s' has no benchmark '%s'", column.c_str(),
               benchmark.c_str());
    return cell->second;
}

bool
GridResult::has(const std::string &column,
                const std::string &benchmark) const
{
    const auto col = _rates.find(column);
    return col != _rates.end() &&
           col->second.find(benchmark) != col->second.end();
}

void
GridResult::setFailed(FailedCell cell)
{
    _failures.push_back(std::move(cell));
}

std::size_t
GridResult::presentCount(const std::string &column,
                         const std::vector<std::string> &members) const
{
    std::size_t count = 0;
    for (const auto &member : members) {
        if (has(column, member))
            ++count;
    }
    return count;
}

double
GridResult::average(const std::string &column,
                    const std::vector<std::string> &members) const
{
    // Partial grids average what survived: failed members are
    // skipped rather than poisoning the group. Callers that must
    // not silently degrade check presentCount() first.
    std::vector<double> rates;
    rates.reserve(members.size());
    for (const auto &member : members) {
        if (has(column, member))
            rates.push_back(get(column, member));
    }
    if (rates.empty())
        return std::numeric_limits<double>::quiet_NaN();
    return mean(rates);
}

SuiteRunner::SuiteRunner(std::vector<std::string> benchmarks,
                         bool emit_conditionals)
    : _names(std::move(benchmarks)),
      _emitConditionals(emit_conditionals)
{
    // An unknown benchmark name is a startup configuration error and
    // must fatal() on the calling thread, not inside a pool task.
    for (const auto &name : _names)
        benchmarkProfile(name);

    _acquireStart = std::chrono::steady_clock::now();
    _acquire.resize(_names.size());
    _acquireRemaining = _names.size();

    Executor &executor = Executor::global();
    executor.ensureWorkers(simulationThreads());
    _acquireBatch = std::make_unique<Executor::Batch>(executor);

    const RetryPolicy policy = retryPolicyFromEnv();
    TraceCache *cache = TraceCache::global();
    // Snapshot the injector BY VALUE: acquisition outlives this
    // constructor, and tests re-arm the global right after it
    // returns - the tasks must keep the configuration they were
    // spawned under.
    const FaultInjector injector = FaultInjector::global();

    for (std::size_t i = 0; i < _names.size(); ++i) {
        _acquireBatch->spawn([this, i, emit_conditionals, policy,
                              cache, injector]() {
            const std::string &name = _names[i];
            const auto generate = [&]() -> Result<Trace> {
                return runWithRetries(policy, [&](unsigned attempt) {
                    injector.check("trace", name, attempt);
                    return generateBenchmarkTrace(name,
                                                  emit_conditionals);
                });
            };
            if (cache) {
                // getOrGenerate coordinates concurrent callers of
                // the same cold key (one generation, everyone else
                // loads the stored entry) - load-or-generate-store
                // would duplicate work the moment two daemon
                // clients, or two runners in one process, race on a
                // cold cache.
                const std::string key =
                    benchmarkTraceCacheKey(name, emit_conditionals);
                auto acquired =
                    cache->getOrGenerate(key, generate, name);
                if (!acquired.ok()) {
                    finishAcquire(i, false, false, Trace{},
                                  acquired.error());
                    return;
                }
                const bool from_cache = acquired.value().fromCache;
                finishAcquire(i, true, from_cache,
                              std::move(acquired.value().trace),
                              RunError{});
                return;
            }
            auto made = generate();
            if (!made.ok()) {
                finishAcquire(i, false, false, Trace{}, made.error());
                return;
            }
            finishAcquire(i, true, false, std::move(made).value(),
                          RunError{});
        });
    }
}

SuiteRunner::~SuiteRunner()
{
    // _acquireBatch is the first-destroyed member and its destructor
    // waits, but be explicit: no acquisition task may outlive the
    // members it writes to.
    if (_acquireBatch)
        _acquireBatch->wait();
}

void
SuiteRunner::finishAcquire(std::size_t index, bool ok, bool from_cache,
                           Trace trace, const RunError &error)
{
    const std::string &name = _names[index];
    std::vector<std::function<void(const Trace *)>> continuations;
    const Trace *published = nullptr;
    {
        std::lock_guard<std::mutex> lock(_acquireMutex);
        if (ok) {
            if (from_cache) {
                ++_traceStats.cacheHits;
                if (trace.readPath() == TraceReadPath::Mmap)
                    ++_traceStats.mmapHits;
                else
                    ++_traceStats.streamHits;
            } else {
                ++_traceStats.generated;
            }
            // std::map nodes are pointer-stable, so handing the
            // address to continuations is safe for the runner's
            // lifetime (duplicate names keep the first trace).
            const auto [it, inserted] =
                _traces.emplace(name, std::move(trace));
            published = &it->second;
        } else {
            warn("trace generation for '%s' failed: %s", name.c_str(),
                 error.describe().c_str());
            _failedTraces.emplace(name, error);
        }
        AcquireSlot &slot = _acquire[index];
        slot.done = true;
        slot.trace = published;
        continuations.swap(slot.continuations);
        if (--_acquireRemaining == 0) {
            _traceStats.seconds =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - _acquireStart)
                    .count();
        }
    }
    _acquireCv.notify_all();
    // Continuations run outside the lock: they spawn simulation work
    // (SuiteRunner::run overlapping with acquisition) and must not
    // hold up other finishing tasks.
    for (auto &continuation : continuations)
        continuation(published);
}

void
SuiteRunner::onTraceReady(
    std::size_t index,
    std::function<void(const Trace *)> continuation) const
{
    const Trace *published = nullptr;
    {
        std::lock_guard<std::mutex> lock(_acquireMutex);
        AcquireSlot &slot = _acquire[index];
        if (!slot.done) {
            slot.continuations.push_back(std::move(continuation));
            return;
        }
        published = slot.trace;
    }
    continuation(published);
}

void
SuiteRunner::waitAcquisition() const
{
    std::unique_lock<std::mutex> lock(_acquireMutex);
    _acquireCv.wait(lock, [&] { return _acquireRemaining == 0; });
}

const std::map<std::string, RunError> &
SuiteRunner::failedBenchmarks() const
{
    waitAcquisition();
    return _failedTraces;
}

const TraceSourceStats &
SuiteRunner::traceSourceStats() const
{
    waitAcquisition();
    return _traceStats;
}

SuiteRunner
SuiteRunner::avgSuite(bool emit_conditionals)
{
    return SuiteRunner(benchmarkGroups().avg, emit_conditionals);
}

SuiteRunner
SuiteRunner::fullSuite(bool emit_conditionals)
{
    std::vector<std::string> names = benchmarkGroups().avg;
    const auto &infrequent = benchmarkGroups().infrequent;
    names.insert(names.end(), infrequent.begin(), infrequent.end());
    return SuiteRunner(std::move(names), emit_conditionals);
}

const Trace &
SuiteRunner::trace(const std::string &benchmark) const
{
    waitAcquisition();
    const auto it = _traces.find(benchmark);
    IBP_ASSERT(it != _traces.end(), "benchmark '%s' not loaded",
               benchmark.c_str());
    return it->second;
}

unsigned
simulationThreads()
{
    if (const char *env = std::getenv("IBP_THREADS")) {
        // Clamp to >= 1 so IBP_THREADS=0 (or garbage) still yields
        // a usable serial run instead of silently ignoring the
        // override.
        return static_cast<unsigned>(
            std::max(1L, std::atol(env)));
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 4 : hw;
}

GridResult
SuiteRunner::run(const std::vector<SweepColumn> &columns,
                 RunSession &session) const
{
    const unsigned grid_id = session.nextGridId++;
    RunMetrics *metrics = session.metrics;
    CheckpointJournal *journal = session.checkpoint;
    // Drain support (docs/SERVICE.md): once the session's abort flag
    // reads true, no NEW cell starts; cells already simulating finish
    // and are journalled, unstarted cells stay absent from the grid.
    const auto aborted = [&session]() {
        return session.abort != nullptr &&
               session.abort->load(std::memory_order_acquire);
    };
    const auto notifyCell = [&session]() {
        if (session.onCellFinished)
            session.onCellFinished();
    };
    const std::int64_t deadline_ns = static_cast<std::int64_t>(
        session.retry.cellDeadlineSeconds * 1e9);

    Executor &executor = Executor::global();
    executor.ensureWorkers(simulationThreads());

    struct Job
    {
        const SweepColumn *column;
        /** Filled once this benchmark's acquisition lands (the fused
         *  phase consumes the trace through its continuation before
         *  that, so it can start the moment the trace exists). */
        const Trace *trace = nullptr;
        const std::string *benchmark;
        double missPercent = 0.0;
        /** Completed by the single-pass phase; skipped per-cell. */
        bool done = false;
        bool failed = false;
        RunError error;
        /** Result-store cell key; empty = don't probe or persist
         *  (store disabled, column unkeyed, or injector armed). */
        std::string storeKey;
        /** Claimed by a live peer at construction time: skipped by
         *  both phases, resolved by the deferred-wait loop (served
         *  from the store, or simulated if the owner gave up). */
        bool deferred = false;
        /** Another shard's cell, tracked only as a work-stealing
         *  candidate; skipped by both phases. */
        bool foreign = false;
    };

    // Content-addressed result store (docs/PERFORMANCE.md): keyed
    // columns probe it before simulating and persist what they
    // compute. An armed fault injector bypasses the store wholesale -
    // injected faults must reach a real simulation, and a faulted
    // run must never pollute the store.
    ResultStore *store = ResultStore::global();
    if (FaultInjector::global().armed())
        store = nullptr;
    // Shard fan-out and cell claims both communicate through the
    // store; without one they degrade to a plain full run (correct,
    // just unshared). See the RunSession field docs.
    const bool shard_active = store != nullptr &&
                              session.shardCount > 1 &&
                              !_names.empty();
    const unsigned shard_count =
        shard_active ? session.shardCount : 1;
    const unsigned shard_index =
        shard_active ? session.shardIndex % shard_count : 0;
    const bool claims_active = store != nullptr && session.cellClaims;
    // hits/misses/invalidated/journalWritebacks are only touched in
    // the single-threaded construction loop below; stores happen on
    // worker threads and are counted separately via an atomic.
    ResultStoreStats store_stats;
    std::atomic<unsigned> store_writes{0};
    std::atomic<unsigned> stolen_cells{0};
    // Cell keys need each benchmark's trace cache key, computable
    // from the name alone (no need to wait for acquisition); cached
    // because profile hashing is per-benchmark work, not per-cell.
    std::map<std::string, std::string> trace_keys;
    const auto traceKeyOf =
        [&](const std::string &name) -> const std::string & {
        auto it = trace_keys.find(name);
        if (it == trace_keys.end()) {
            it = trace_keys
                     .emplace(name, benchmarkTraceCacheKey(
                                        name, _emitConditionals))
                     .first;
        }
        return it->second;
    };

    GridResult grid;
    std::vector<Job> jobs;
    jobs.reserve(columns.size() * _names.size());
    // Claim handles, index-aligned with jobs (CellClaim is move-only
    // and Job is an aggregate; a parallel vector keeps Job cheap).
    // Never resized after construction, so finishCell can release a
    // cell's claim from its worker thread without locking; whatever
    // is still held at return (drained / deferred / failed cells)
    // releases via the destructors.
    std::vector<CellClaim> cell_claims;
    cell_claims.reserve(columns.size() * _names.size());
    const auto pushJob = [&](Job job, CellClaim claim = {}) {
        jobs.push_back(std::move(job));
        cell_claims.push_back(std::move(claim));
    };
    // Serve one cell from a stored entry: identical bookkeeping to
    // the warm-probe hit path, reused by the post-claim re-probe and
    // the deferred-wait loop (stored integer counters make the
    // restored miss rate bit-identical to a cold computation).
    const auto serveStored = [&](const SweepColumn &column,
                                 const std::string &name,
                                 const StoredResult &cell) {
        grid.set(column.label, name, cell.missPercent);
        if (metrics && cell.hasCounters) {
            CellMetrics restored_cell;
            restored_cell.column = column.label;
            restored_cell.benchmark = name;
            restored_cell.branches = cell.branches;
            restored_cell.seconds = cell.seconds;
            restored_cell.groupSeconds = cell.groupSeconds;
            restored_cell.secondsSynthetic = cell.sharedTraversal;
            restored_cell.tableOccupancy = cell.tableOccupancy;
            restored_cell.tableCapacity = cell.tableCapacity;
            metrics->recordCell(restored_cell);
        }
        if (journal) {
            // Journalled like any finished cell, so a
            // drained-and-resumed sweep stays coherent.
            const auto appended = journal->append(
                CheckpointCell{grid_id, column.label, name,
                               cell.missPercent});
            if (!appended.ok()) {
                warn("checkpoint append failed for %s/%s: %s",
                     column.label.c_str(), name.c_str(),
                     appended.error().describe().c_str());
            }
        }
        notifyCell();
    };
    for (const auto &column : columns) {
        for (std::size_t name_index = 0;
             name_index < _names.size(); ++name_index) {
            const std::string &name = _names[name_index];
            // Resume: a journalled cell is restored verbatim, not
            // recomputed (it carries the full-precision miss rate).
            // Benchmarks whose acquisition fails are resolved after
            // the acquisition barrier below - their cells fail
            // without ever simulating.
            if (journal) {
                const auto restored =
                    journal->lookup(grid_id, column.label, name);
                if (restored) {
                    grid.set(column.label, name, *restored);
                    // Checkpoint/result-store interplay: the journal
                    // resurrected this cell, so it is NOT a store
                    // hit - but its value is worth persisting so the
                    // next journal-less warm run finds it. Written
                    // back exactly once (contains() guards reruns of
                    // the same journal); the journal records only
                    // the miss rate, so the entry carries no
                    // counters.
                    if (store && column.specHash != 0) {
                        const std::string key = ResultStore::cellKey(
                            traceKeyOf(name), column.specHash);
                        if (!store->contains(key)) {
                            StoredResult entry;
                            entry.benchmark = name;
                            entry.hasCounters = false;
                            entry.missPercent = *restored;
                            const auto written =
                                store->store(key, entry);
                            if (written.ok()) {
                                ++store_stats.journalWritebacks;
                            } else {
                                warn("result store write-back for "
                                     "%s/%s failed: %s",
                                     column.label.c_str(),
                                     name.c_str(),
                                     written.error()
                                         .describe()
                                         .c_str());
                            }
                        }
                    }
                    notifyCell();
                    continue;
                }
                // Poisoning: a cell with this many start records but
                // no completion killed (or hung) every prior
                // incarnation that tried it. Another attempt would
                // crash-loop the sweep, so record a timeout failure
                // and move on (docs/ROBUSTNESS.md).
                const unsigned prior = journal->startedCountPrior(
                    grid_id, column.label, name);
                if (prior >= session.retry.poisonThreshold) {
                    const std::string message =
                        "cell poisoned: " + std::to_string(prior) +
                        " prior incarnations died inside it";
                    if (metrics) {
                        metrics->recordFailure(FailureRecord{
                            column.label, name, message,
                            errorKindName(ErrorKind::Timeout),
                            prior});
                    }
                    grid.setFailed(FailedCell{column.label, name,
                                              message,
                                              ErrorKind::Timeout,
                                              prior});
                    notifyCell();
                    continue;
                }
            }
            std::string store_key;
            if (store && column.specHash != 0) {
                store_key = ResultStore::cellKey(traceKeyOf(name),
                                                 column.specHash);
            }
            // Shard filter: only the owner shard simulates a cell;
            // other shards either track it as a steal candidate or
            // skip it outright (the merge pass restores it from the
            // store). Unkeyed cells cannot flow through the store,
            // so every shard leaves them for the merge.
            if (shard_active) {
                if (store_key.empty())
                    continue;
                const unsigned owner = static_cast<unsigned>(
                    (name_index + grid_id) % shard_count);
                if (owner != shard_index) {
                    if (session.shardSteal) {
                        pushJob(Job{&column, nullptr, &name, 0.0,
                                    false, false, {},
                                    std::move(store_key), false,
                                    true});
                    }
                    continue;
                }
            }
            // Warm probe: a keyed cell whose inputs (trace key x
            // spec hash x simulator version x table impl) match a
            // stored entry is loaded instead of simulated - the
            // stored integer counters make the restored miss rate
            // bit-identical to a cold computation. A quarantined
            // entry counts as invalidated and the cell re-simulates.
            if (!store_key.empty()) {
                const auto loaded = store->load(store_key);
                if (loaded.status == ResultStore::LoadStatus::Hit) {
                    ++store_stats.hits;
                    serveStored(column, name, loaded.result);
                    continue;
                }
                if (loaded.status ==
                    ResultStore::LoadStatus::Invalidated) {
                    ++store_stats.invalidated;
                } else {
                    ++store_stats.misses;
                }
                if (claims_active) {
                    CellClaim claim = store->tryClaim(store_key);
                    if (claim.busy()) {
                        // A live peer is computing this cell right
                        // now: defer it and serve it from the store
                        // once the peer persists it (the cross-shard
                        // / cross-request exactly-once path).
                        ++store_stats.claimBusy;
                        pushJob(Job{&column, nullptr, &name, 0.0,
                                    false, false, {},
                                    std::move(store_key), true});
                        continue;
                    }
                    // The previous owner may have stored the entry
                    // and released between our probe and this claim;
                    // re-probe so we serve instead of re-simulating.
                    const auto raced = store->load(store_key);
                    if (raced.status ==
                        ResultStore::LoadStatus::Hit) {
                        ++store_stats.claimServed;
                        serveStored(column, name, raced.result);
                        continue;
                    }
                    ++store_stats.claims;
                    pushJob(Job{&column, nullptr, &name, 0.0, false,
                                false, {}, std::move(store_key)},
                            std::move(claim));
                    continue;
                }
            }
            pushJob(Job{&column, nullptr, &name, 0.0, false, false,
                        {}, std::move(store_key)});
        }
    }

    // One slot per pool worker (plus one for off-pool callers, e.g.
    // inline execution when the pool degraded to zero workers)
    // carries the watchdog state. The attempt
    // currently running is published as an *epoch*: the worker bumps
    // it before arming a deadline, and the watchdog requests
    // cancellation of the epoch it observed, so a request that lands
    // after the attempt already finished names a dead epoch and the
    // next attempt's poll ignores it (the stale-cancel race the old
    // plain bool had).
    struct WorkerSlot
    {
        /** Epoch of the armed attempt, 0 when idle. */
        std::atomic<std::uint64_t> epoch{0};
        std::atomic<std::int64_t> deadlineNs{0};
        CancelToken token;
        /** Owner-thread counter; never reused within a slot. */
        std::uint64_t lastEpoch = 0;

        void
        arm(std::int64_t deadline_at)
        {
            token.armed = ++lastEpoch;
            epoch.store(token.armed, std::memory_order_release);
            deadlineNs.store(deadline_at, std::memory_order_release);
        }

        void
        disarm()
        {
            deadlineNs.store(0, std::memory_order_relaxed);
            epoch.store(0, std::memory_order_release);
            token.armed = 0;
        }
    };
    // publishedWorkers() is monotonic and a worker's index is always
    // below it, so indexing is stable for the whole run; the extra
    // slot serves any off-pool thread. Tasks on one worker run
    // sequentially, so each slot has one owner at a time.
    const unsigned published_workers = executor.publishedWorkers();
    std::vector<WorkerSlot> slots(published_workers + 1);
    const auto slotFor = [&slots, published_workers]() -> WorkerSlot & {
        const int index = Executor::currentWorkerIndex();
        if (index < 0 ||
            static_cast<unsigned>(index) >= published_workers) {
            return slots[published_workers];
        }
        return slots[static_cast<unsigned>(index)];
    };

    std::mutex wd_mutex;
    std::condition_variable wd_cv;
    bool wd_stop = false;
    std::thread watchdog;
    if (deadline_ns > 0 && !jobs.empty()) {
        watchdog = std::thread([&]() {
            std::unique_lock<std::mutex> lock(wd_mutex);
            while (!wd_stop) {
                wd_cv.wait_for(lock, std::chrono::milliseconds(20));
                const std::int64_t now = nowNs();
                for (auto &slot : slots) {
                    // Consistent (epoch, deadline) snapshot: if the
                    // worker swapped attempts between the two epoch
                    // reads, skip this tick and re-check in 20ms
                    // rather than cancel with a mismatched pair.
                    const std::uint64_t e1 =
                        slot.epoch.load(std::memory_order_acquire);
                    if (e1 == 0)
                        continue;
                    const std::int64_t deadline =
                        slot.deadlineNs.load(std::memory_order_acquire);
                    const std::uint64_t e2 =
                        slot.epoch.load(std::memory_order_acquire);
                    if (e1 != e2 || deadline == 0 || now < deadline)
                        continue;
                    slot.token.requested.store(
                        e1, std::memory_order_relaxed);
                }
            }
        });
    }

    const auto grid_start = std::chrono::steady_clock::now();

    // Shared by both phases: record one finished cell.
    const auto finishCell = [&](Job &job, const SimResult &result) {
        job.missPercent = result.missPercent();
        job.done = true;
        if (metrics) {
            // One record per finished cell - never inside the
            // per-branch simulation loop.
            CellMetrics cell;
            cell.column = job.column->label;
            cell.benchmark = *job.benchmark;
            cell.branches = result.branches;
            cell.seconds = result.seconds;
            cell.groupSeconds = result.groupSeconds;
            cell.secondsSynthetic = result.sharedTraversal;
            cell.tableOccupancy = result.tableOccupancy;
            cell.tableCapacity = result.tableCapacity;
            metrics->recordCell(cell);
        }
        if (journal) {
            const auto appended = journal->append(CheckpointCell{
                grid_id, job.column->label, *job.benchmark,
                job.missPercent});
            if (!appended.ok()) {
                warn("checkpoint append failed for %s/%s: %s",
                     job.column->label.c_str(), job.benchmark->c_str(),
                     appended.error().describe().c_str());
            }
        }
        // Persist the freshly computed cell (atomic write; a full
        // disk degrades the store, never the run). Runs on worker
        // threads, hence the atomic write counter.
        if (store && !job.storeKey.empty()) {
            StoredResult entry;
            entry.benchmark = *job.benchmark;
            entry.predictor = result.predictor;
            entry.hasCounters = true;
            entry.branches = result.branches;
            entry.misses = result.misses;
            entry.noPrediction = result.noPrediction;
            entry.tableOccupancy = result.tableOccupancy;
            entry.tableCapacity = result.tableCapacity;
            entry.seconds = result.seconds;
            entry.groupSeconds = result.groupSeconds;
            entry.sharedTraversal = result.sharedTraversal;
            entry.missPercent = job.missPercent;
            const auto written = store->store(job.storeKey, entry);
            if (written.ok()) {
                store_writes.fetch_add(1, std::memory_order_relaxed);
            } else {
                warn("result store write for %s/%s failed: %s",
                     job.column->label.c_str(),
                     job.benchmark->c_str(),
                     written.error().describe().c_str());
            }
        }
        // Release the cell claim AFTER the store write, so a peer
        // that wins the next claim finds the entry instead of
        // re-simulating. Jobs never reallocate after construction,
        // so the index is stable and each element has one owner.
        const auto job_index =
            static_cast<std::size_t>(&job - jobs.data());
        if (job_index < cell_claims.size())
            cell_claims[job_index].release();
        notifyCell();
    };

    // Fused-path telemetry (satellite: mirror trace_source). Chunks
    // run concurrently, so the counters are atomic; a "group" here is
    // one fused chunk (split-on-idle can divide a benchmark's columns
    // across several chunks, each fused independently).
    std::atomic<unsigned> fused_groups{0};
    std::atomic<unsigned> fallback_factory{0};
    std::atomic<unsigned> fallback_cancelled{0};
    std::atomic<unsigned> fallback_injected{0};
    std::atomic<unsigned> fallback_error{0};
    std::atomic<unsigned> predictors_bound{0};
    std::atomic<unsigned> predictors_unbound{0};
    std::atomic<unsigned> predictors_deduped{0};
    unsigned fallback_injector_armed = 0;
    // Block-traversal telemetry summed over successful fused chunks
    // (metrics.simd; see TraversalStats).
    std::atomic<std::uint64_t> simd_columnar_blocks{0};
    std::atomic<std::uint64_t> simd_transposed_blocks{0};
    std::atomic<std::uint64_t> simd_skipped_records{0};
    std::atomic<std::uint64_t> simd_lane_columns{0};
    std::atomic<std::uint64_t> simd_generic_columns{0};
    std::atomic<std::uint64_t> simd_lane_machines{0};

    // Phase 1 (opportunistic): feed all pending columns of a
    // benchmark from ONE trace traversal with a fused sweep kernel,
    // each chunk becoming runnable the moment its trace lands
    // (onTraceReady continuation -> executor task). Skipped when the
    // fault injector arms the "sim" site - those faults are per-cell
    // by construction - while the dedicated "fused" site injects
    // into this phase to test the fallback. Any failure inside a
    // chunk (factory error, watchdog cancellation, injected fault,
    // anything the engine throws) simply leaves its jobs pending for
    // phase 2, which re-runs them under the full per-cell
    // retry/deadline isolation. Results are bit-identical either way
    // (see simulateMany()).
    if (session.singlePass && !jobs.empty()) {
        std::vector<std::vector<std::size_t>> groups;
        std::map<std::string, std::size_t> group_of;
        for (std::size_t j = 0; j < jobs.size(); ++j) {
            // Deferred cells resolve through the store; foreign
            // cells only through the steal sweep.
            if (jobs[j].deferred || jobs[j].foreign)
                continue;
            const auto [it, fresh] = group_of.try_emplace(
                *jobs[j].benchmark, groups.size());
            if (fresh)
                groups.emplace_back();
            groups[it->second].push_back(j);
        }

        if (FaultInjector::global().armedFor("sim")) {
            fallback_injector_armed =
                static_cast<unsigned>(groups.size());
        } else {
            Executor::Batch batch(executor);

            // One fused chunk: build the members' predictors, bind
            // them to a kernel, run the shared traversal. Declared as
            // a std::function so split-off halves can re-enter it.
            std::function<void(const Trace *,
                               std::vector<std::size_t>)>
                runChunk = [&](const Trace *chunk_trace,
                               std::vector<std::size_t> members) {
                    // Draining: leave the chunk's jobs pending;
                    // phase 2 skips them again, so they stay
                    // unstarted for the resumed run.
                    if (aborted())
                        return;
                    // Split-on-idle: while other workers are parked,
                    // hand them half of this chunk. Each half fuses
                    // independently; per-column results do not depend
                    // on chunk composition, so splitting cannot
                    // change any counter.
                    while (members.size() > 1 &&
                           executor.idleWorkers() > 0) {
                        const std::size_t keep = members.size() / 2;
                        std::vector<std::size_t> given(
                            members.begin() +
                                static_cast<std::ptrdiff_t>(keep),
                            members.end());
                        members.resize(keep);
                        batch.spawn([&runChunk, chunk_trace,
                                     given = std::move(given)]() mutable {
                            runChunk(chunk_trace, std::move(given));
                        });
                    }

                    const std::string &benchmark =
                        *jobs[members.front()].benchmark;
                    try {
                        FaultInjector::global().check(
                            "fused",
                            std::to_string(grid_id) + "/" + benchmark);
                    } catch (const RunException &) {
                        fallback_injected.fetch_add(
                            1, std::memory_order_relaxed);
                        return;
                    }

                    if (journal) {
                        // One batched start record per chunk member:
                        // if the process dies inside this traversal,
                        // the resuming run knows which cells were in
                        // flight. A single fsync covers the chunk.
                        std::vector<CheckpointStart> starts;
                        starts.reserve(members.size());
                        for (const std::size_t j : members) {
                            starts.push_back(CheckpointStart{
                                grid_id, jobs[j].column->label,
                                *jobs[j].benchmark});
                        }
                        const auto marked =
                            journal->appendStarts(starts);
                        if (!marked.ok()) {
                            warn("checkpoint start append failed: %s",
                                 marked.error().describe().c_str());
                        }
                    }

                    std::vector<std::unique_ptr<IndirectPredictor>>
                        predictors;
                    std::vector<IndirectPredictor *> raw;
                    predictors.reserve(members.size());
                    raw.reserve(members.size());
                    try {
                        for (const std::size_t j : members) {
                            auto predictor = jobs[j].column->make();
                            if (!predictor) {
                                throw RunException(RunError::permanent(
                                    "predictor factory for '" +
                                    jobs[j].column->label +
                                    "' returned null"));
                            }
                            raw.push_back(predictor.get());
                            predictors.push_back(std::move(predictor));
                        }
                    } catch (...) {
                        fallback_factory.fetch_add(
                            1, std::memory_order_relaxed);
                        return;
                    }

                    SweepKernel kernel;
                    for (IndirectPredictor *predictor : raw)
                        kernel.tryJoin(*predictor);
                    kernel.finalize();

                    WorkerSlot &slot = slotFor();
                    try {
                        if (deadline_ns > 0) {
                            // The whole-chunk deadline is the sum of
                            // the per-cell budgets it replaces.
                            slot.arm(nowNs() +
                                     deadline_ns *
                                         static_cast<std::int64_t>(
                                             members.size()));
                        }
                        SimOptions options;
                        options.cancel = &slot.token;
                        options.kernel = &kernel;
                        TraversalStats traversal;
                        options.traversal = &traversal;
                        const std::vector<SimResult> results =
                            simulateMany(raw, *chunk_trace, options);
                        slot.disarm();
                        simd_columnar_blocks.fetch_add(
                            traversal.columnarBlocks,
                            std::memory_order_relaxed);
                        simd_transposed_blocks.fetch_add(
                            traversal.transposedBlocks,
                            std::memory_order_relaxed);
                        simd_skipped_records.fetch_add(
                            traversal.skippedRecords,
                            std::memory_order_relaxed);
                        simd_lane_columns.fetch_add(
                            traversal.laneColumns,
                            std::memory_order_relaxed);
                        simd_generic_columns.fetch_add(
                            traversal.genericColumns,
                            std::memory_order_relaxed);
                        simd_lane_machines.fetch_add(
                            traversal.laneMachines,
                            std::memory_order_relaxed);
                        for (std::size_t i = 0; i < members.size();
                             ++i) {
                            finishCell(jobs[members[i]], results[i]);
                        }
                        fused_groups.fetch_add(
                            1, std::memory_order_relaxed);
                        predictors_bound.fetch_add(
                            kernel.joinedPredictors(),
                            std::memory_order_relaxed);
                        predictors_unbound.fetch_add(
                            kernel.declinedPredictors(),
                            std::memory_order_relaxed);
                        predictors_deduped.fetch_add(
                            kernel.dedupedPredictors(),
                            std::memory_order_relaxed);
                    } catch (const RunException &exception) {
                        // Leave the chunk's jobs pending; phase 2
                        // gives each cell its own isolated retries.
                        slot.disarm();
                        if (exception.error().kind ==
                            ErrorKind::Timeout) {
                            fallback_cancelled.fetch_add(
                                1, std::memory_order_relaxed);
                        } else {
                            fallback_error.fetch_add(
                                1, std::memory_order_relaxed);
                        }
                    } catch (...) {
                        slot.disarm();
                        fallback_error.fetch_add(
                            1, std::memory_order_relaxed);
                    }
                };

            // Acquisition slot index of each benchmark name (first
            // occurrence wins, matching finishAcquire).
            std::map<std::string, std::size_t> name_index;
            for (std::size_t i = 0; i < _names.size(); ++i)
                name_index.try_emplace(_names[i], i);

            for (const auto &members : groups) {
                const std::size_t index =
                    name_index.at(*jobs[members.front()].benchmark);
                // defer() reserves the chunk in the batch before the
                // trace exists, so batch.wait() below cannot return
                // while any chunk is still gated on acquisition.
                batch.defer();
                onTraceReady(index, [&batch, &runChunk,
                                     members](const Trace *trace) {
                    if (trace == nullptr) {
                        // Acquisition failed; the jobs are resolved
                        // as failed cells after the barrier below.
                        batch.cancelDeferred();
                        return;
                    }
                    batch.spawnDeferred([&runChunk, trace, members]() {
                        runChunk(trace, members);
                    });
                });
            }
            batch.wait();
        }
    }

    // Acquisition barrier: phase 2 (and failed-trace resolution)
    // needs every outcome, not just the ones phase 1 consumed.
    waitAcquisition();
    for (auto &job : jobs) {
        if (job.done || job.failed)
            continue;
        const auto failed_trace = _failedTraces.find(*job.benchmark);
        if (failed_trace != _failedTraces.end()) {
            // A benchmark whose trace never materialised fails every
            // cell up front - no point retrying the simulation.
            const RunError &cause = failed_trace->second;
            job.failed = true;
            job.error = cause;
            job.error.message = cause.describe();
            // A foreign steal candidate was never this shard's work:
            // mark it unstealable without charging this shard a
            // failure record or a progress tick.
            if (job.foreign)
                continue;
            if (metrics) {
                metrics->recordFailure(
                    FailureRecord{job.column->label, *job.benchmark,
                                  cause.describe(),
                                  errorKindName(cause.kind),
                                  cause.attempts});
            }
            notifyCell();
            continue;
        }
        job.trace = &_traces.at(*job.benchmark);
    }

    // One isolated cell attempt, shared by phase 2, the steal sweep
    // and the deferred-wait loop: the full per-cell machinery
    // (journal start records, retry policy, watchdog deadline, fault
    // injection). record_failure=false leaves a failed cell pending
    // instead of failing the grid - a stolen cell's owner (or the
    // merge pass) remains responsible for it.
    const auto attemptCell = [&](Job &job, bool record_failure) {
        WorkerSlot &slot = slotFor();
        const std::string fault_key = std::to_string(grid_id) + "/" +
                                      job.column->label + "/" +
                                      *job.benchmark;
        // Attempts of dead incarnations count: seeding the
        // fault-injection attempt with the journalled start
        // count lets a deterministic injected crash/hang
        // clear when a fresh process retries the cell.
        const unsigned prior_starts =
            journal ? journal->startedCountPrior(
                          grid_id, job.column->label, *job.benchmark)
                    : 0;
        auto outcome = runWithRetries(
            session.retry, [&](unsigned attempt) {
                if (journal) {
                    const auto marked = journal->appendStart(
                        CheckpointStart{grid_id, job.column->label,
                                        *job.benchmark});
                    if (!marked.ok()) {
                        warn("checkpoint start append failed"
                             " for %s/%s: %s",
                             job.column->label.c_str(),
                             job.benchmark->c_str(),
                             marked.error().describe().c_str());
                    }
                }
                if (deadline_ns > 0)
                    slot.arm(nowNs() + deadline_ns);
                // The attempt must disarm on every exit path
                // or the watchdog would target a dead epoch
                // (and the old plain-bool design would have
                // cancelled the *next* attempt).
                struct Disarm
                {
                    WorkerSlot &slot;
                    ~Disarm() { slot.disarm(); }
                } disarm{slot};
                FaultInjector::global().check("sim", fault_key,
                                              prior_starts + attempt);
                auto predictor = job.column->make();
                if (!predictor) {
                    throw RunException(RunError::permanent(
                        "predictor factory for '" +
                        job.column->label + "' returned null"));
                }
                SimOptions options;
                options.cancel = &slot.token;
                return simulate(*predictor, *job.trace, options);
            });
        if (!outcome.ok()) {
            if (!record_failure)
                return;
            job.failed = true;
            job.error = outcome.error();
            if (metrics) {
                metrics->recordFailure(FailureRecord{
                    job.column->label, *job.benchmark,
                    job.error.message, errorKindName(job.error.kind),
                    job.error.attempts});
            }
            notifyCell();
            return;
        }
        finishCell(job, outcome.value());
    };

    // Phase 2: per-cell isolation for everything still pending.
    {
        Executor::Batch batch(executor);
        for (std::size_t j = 0; j < jobs.size(); ++j) {
            if (jobs[j].done || jobs[j].failed ||
                jobs[j].deferred || jobs[j].foreign) {
                continue;
            }
            batch.spawn([&, j]() {
                // Draining: leave the cell unstarted (not failed),
                // so the resumed run picks it up.
                if (aborted())
                    return;
                attemptCell(jobs[j], true);
            });
        }
        batch.wait();
    }

    // Steal sweep: with our own partition done, pick up foreign
    // cells whose owner shard has neither stored nor claimed them
    // (it crashed, or is simply slower). Claim-gated, so a live
    // owner mid-cell is never duplicated; a stolen cell's store
    // entry is what the merge pass (and the owner's own warm probe)
    // serves.
    if (shard_active && session.shardSteal) {
        Executor::Batch batch(executor);
        for (std::size_t j = 0; j < jobs.size(); ++j) {
            if (!jobs[j].foreign || jobs[j].failed)
                continue;
            batch.spawn([&, j]() {
                if (aborted())
                    return;
                Job &job = jobs[j];
                if (store->contains(job.storeKey))
                    return; // the owner already persisted it
                CellClaim claim = store->tryClaim(job.storeKey);
                if (!claim.acquired())
                    return; // the owner is computing it right now
                if (store->contains(job.storeKey))
                    return; // it landed while we claimed
                attemptCell(job, false);
                if (job.done) {
                    stolen_cells.fetch_add(1,
                                           std::memory_order_relaxed);
                }
                // ~CellClaim releases AFTER finishCell's store
                // write, so the next claimant finds the entry.
            });
        }
        batch.wait();
    }

    // Deferred-wait loop: cells another claimant was computing when
    // we started. Poll the store (the owner's finishCell persists
    // there), and retry the claim each round - acquiring it means
    // the owner gave up (drained, crashed) without storing, making
    // the cell ours. Past the wait ceiling, simulate regardless:
    // a duplicate simulation is benign (atomic store writes),
    // a grid hole is not.
    if (store != nullptr) {
        std::vector<std::size_t> waiting;
        for (std::size_t j = 0; j < jobs.size(); ++j) {
            if (jobs[j].deferred && !jobs[j].done && !jobs[j].failed)
                waiting.push_back(j);
        }
        const auto give_up_at =
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<
                std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(
                    claimWaitCeilingSeconds()));
        bool force = false;
        while (!waiting.empty() && !aborted()) {
            std::vector<std::size_t> still;
            for (const std::size_t j : waiting) {
                Job &job = jobs[j];
                const auto loaded = store->load(job.storeKey);
                if (loaded.status == ResultStore::LoadStatus::Hit) {
                    // The owner delivered: one simulation, N
                    // consumers.
                    ++store_stats.claimServed;
                    serveStored(*job.column, *job.benchmark,
                                loaded.result);
                    job.done = true;
                    job.missPercent = loaded.result.missPercent;
                    continue;
                }
                if (force) {
                    attemptCell(job, true);
                    continue;
                }
                CellClaim claim = store->tryClaim(job.storeKey);
                if (!claim.acquired()) {
                    still.push_back(j);
                    continue;
                }
                // The owner is gone without storing; the cell is
                // ours now (~CellClaim releases after the store
                // write inside finishCell).
                ++store_stats.claims;
                attemptCell(job, true);
            }
            waiting = std::move(still);
            if (waiting.empty())
                break;
            if (std::chrono::steady_clock::now() >= give_up_at) {
                force = true;
                continue;
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
        }
    }

    const unsigned threads_used = std::max(
        1u, static_cast<unsigned>(std::min<std::size_t>(
                executor.workerCount(), jobs.size())));

    if (watchdog.joinable()) {
        {
            std::lock_guard<std::mutex> lock(wd_mutex);
            wd_stop = true;
        }
        wd_cv.notify_one();
        watchdog.join();
    }

    if (metrics) {
        metrics->recordThreads(threads_used);
        metrics->recordRunWindow(
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - grid_start)
                .count());
        // Once per runner: whether this run paid the trace
        // generation cost or rode the cache (the CI cache-smoke job
        // asserts on these counters).
        if (!_traceStatsPublished.exchange(true)) {
            metrics->recordTraceSource(_traceStats.generated,
                                       _traceStats.mmapHits,
                                       _traceStats.streamHits,
                                       _traceStats.seconds);
        }
        // Fused-path observability, mirroring trace_source: how many
        // chunks the fused engine served and why any fell back.
        if (session.singlePass && !jobs.empty()) {
            SweepKernelStats sweep;
            sweep.groupsFused =
                fused_groups.load(std::memory_order_relaxed);
            sweep.fallbackFactory =
                fallback_factory.load(std::memory_order_relaxed);
            sweep.fallbackCancelled =
                fallback_cancelled.load(std::memory_order_relaxed);
            sweep.fallbackInjected =
                fallback_injected.load(std::memory_order_relaxed);
            sweep.fallbackError =
                fallback_error.load(std::memory_order_relaxed);
            sweep.fallbackInjectorArmed = fallback_injector_armed;
            sweep.groupsPerCell =
                sweep.fallbackFactory + sweep.fallbackCancelled +
                sweep.fallbackInjected + sweep.fallbackError +
                sweep.fallbackInjectorArmed;
            sweep.predictorsBound =
                predictors_bound.load(std::memory_order_relaxed);
            sweep.predictorsUnbound =
                predictors_unbound.load(std::memory_order_relaxed);
            sweep.predictorsDeduped =
                predictors_deduped.load(std::memory_order_relaxed);
            metrics->recordSweepKernel(sweep);
        }
        // SIMD/SoA observability: the process-wide dispatch level is
        // always worth recording; the traversal counters are summed
        // over the fused chunks above (zero for per-cell runs, which
        // is itself informative).
        {
            SimdStats simd;
            simd.dispatchLevel = simdLevelName(simdLevel());
            simd.fallbackReason = simdFallbackReason();
            simd.columnarBlocks =
                simd_columnar_blocks.load(std::memory_order_relaxed);
            simd.transposedBlocks = simd_transposed_blocks.load(
                std::memory_order_relaxed);
            simd.skippedRecords =
                simd_skipped_records.load(std::memory_order_relaxed);
            simd.laneColumns =
                simd_lane_columns.load(std::memory_order_relaxed);
            simd.genericColumns =
                simd_generic_columns.load(std::memory_order_relaxed);
            simd.laneMachines =
                simd_lane_machines.load(std::memory_order_relaxed);
            metrics->recordSimd(simd);
        }
        // Result-store observability: recorded whenever the store
        // was armed for this run (even an all-miss cold pass), so
        // the CI warm-store gate can assert hits == cells with zero
        // misses on the warm artifact.
        if (store) {
            store_stats.stores =
                store_writes.load(std::memory_order_relaxed);
            store_stats.stolen =
                stolen_cells.load(std::memory_order_relaxed);
            metrics->recordResultStore(store_stats);
        }
    }

    for (auto &job : jobs) {
        if (job.foreign && !job.done) {
            // Unstolen foreign cells are the owner's (or the merge
            // pass's) problem, failed traces included; they must not
            // mark this shard's grid partial.
            continue;
        }
        if (job.failed) {
            grid.setFailed(FailedCell{
                job.column->label, *job.benchmark, job.error.message,
                job.error.kind, job.error.attempts});
        } else if (job.done) {
            grid.set(job.column->label, *job.benchmark,
                     job.missPercent);
        }
        // Neither done nor failed: the drain flag stopped the cell
        // before it started. It stays absent from the grid, exactly
        // like a journal-restored run never saw it.
    }
    return grid;
}

GridResult
SuiteRunner::run(const std::vector<SweepColumn> &columns,
                 RunMetrics *metrics) const
{
    RunSession session;
    session.metrics = metrics;
    session.retry = retryPolicyFromEnv();
    return run(columns, session);
}

std::map<std::string, double>
SuiteRunner::runOne(const PredictorFactory &factory,
                    RunMetrics *metrics) const
{
    const GridResult grid =
        run({SweepColumn{"only", factory}}, metrics);
    std::map<std::string, double> rates;
    for (const auto &name : _names) {
        if (grid.has("only", name))
            rates[name] = grid.get("only", name);
    }
    return rates;
}

std::vector<std::pair<std::string, std::vector<std::string>>>
SuiteRunner::coveredGroups() const
{
    const auto &groups = benchmarkGroups();
    // Coverage is about what this runner was *asked* to simulate,
    // not what survived trace generation: a group whose member
    // failed still renders (partially) instead of vanishing and
    // silently reshaping every table.
    const std::set<std::string> requested(_names.begin(),
                                          _names.end());
    const auto covered = [&](const std::vector<std::string> &members) {
        for (const auto &member : members) {
            if (requested.find(member) == requested.end())
                return false;
        }
        return !members.empty();
    };

    std::vector<std::pair<std::string, std::vector<std::string>>> out;
    if (covered(groups.avg))
        out.emplace_back("AVG", groups.avg);
    if (covered(groups.oo))
        out.emplace_back("AVG-OO", groups.oo);
    if (covered(groups.c))
        out.emplace_back("AVG-C", groups.c);
    if (covered(groups.avg100))
        out.emplace_back("AVG-100", groups.avg100);
    if (covered(groups.avg200))
        out.emplace_back("AVG-200", groups.avg200);
    if (covered(groups.infrequent))
        out.emplace_back("AVG-infreq", groups.infrequent);
    return out;
}

ResultTable
SuiteRunner::groupTable(const std::string &title, const GridResult &grid,
                        const std::vector<SweepColumn> &columns) const
{
    ResultTable table(title, "group");
    for (const auto &column : columns)
        table.addColumn(column.label);
    for (const auto &[group, members] : coveredGroups()) {
        const unsigned row = table.addRow(group);
        for (unsigned c = 0; c < columns.size(); ++c) {
            // Blank cell when the whole group failed; a partial
            // average is still rendered (ROBUSTNESS.md documents
            // the degraded semantics).
            if (grid.presentCount(columns[c].label, members) == 0)
                continue;
            table.set(row, c, grid.average(columns[c].label, members));
        }
    }
    return table;
}

ResultTable
SuiteRunner::benchmarkTable(const std::string &title,
                            const GridResult &grid,
                            const std::vector<SweepColumn> &columns) const
{
    ResultTable table(title, "benchmark");
    for (const auto &column : columns)
        table.addColumn(column.label);
    for (const auto &[group, members] : coveredGroups()) {
        const unsigned row = table.addRow(group);
        for (unsigned c = 0; c < columns.size(); ++c) {
            if (grid.presentCount(columns[c].label, members) == 0)
                continue;
            table.set(row, c, grid.average(columns[c].label, members));
        }
    }
    for (const auto &name : _names) {
        const unsigned row = table.addRow(name);
        for (unsigned c = 0; c < columns.size(); ++c) {
            if (grid.has(columns[c].label, name))
                table.set(row, c, grid.get(columns[c].label, name));
        }
    }
    return table;
}

} // namespace ibp
