#include "sim/suite_runner.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdlib>
#include <limits>
#include <set>
#include <system_error>
#include <thread>

#include "robust/fault_injection.hh"
#include "trace/trace_cache.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace ibp {

namespace {

std::int64_t
nowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

void
GridResult::set(const std::string &column, const std::string &benchmark,
                double miss_percent)
{
    _rates[column][benchmark] = miss_percent;
}

double
GridResult::get(const std::string &column,
                const std::string &benchmark) const
{
    const auto col = _rates.find(column);
    IBP_ASSERT(col != _rates.end(), "unknown column '%s'",
               column.c_str());
    const auto cell = col->second.find(benchmark);
    IBP_ASSERT(cell != col->second.end(),
               "column '%s' has no benchmark '%s'", column.c_str(),
               benchmark.c_str());
    return cell->second;
}

bool
GridResult::has(const std::string &column,
                const std::string &benchmark) const
{
    const auto col = _rates.find(column);
    return col != _rates.end() &&
           col->second.find(benchmark) != col->second.end();
}

void
GridResult::setFailed(FailedCell cell)
{
    _failures.push_back(std::move(cell));
}

std::size_t
GridResult::presentCount(const std::string &column,
                         const std::vector<std::string> &members) const
{
    std::size_t count = 0;
    for (const auto &member : members) {
        if (has(column, member))
            ++count;
    }
    return count;
}

double
GridResult::average(const std::string &column,
                    const std::vector<std::string> &members) const
{
    // Partial grids average what survived: failed members are
    // skipped rather than poisoning the group. Callers that must
    // not silently degrade check presentCount() first.
    std::vector<double> rates;
    rates.reserve(members.size());
    for (const auto &member : members) {
        if (has(column, member))
            rates.push_back(get(column, member));
    }
    if (rates.empty())
        return std::numeric_limits<double>::quiet_NaN();
    return mean(rates);
}

SuiteRunner::SuiteRunner(std::vector<std::string> benchmarks,
                         bool emit_conditionals)
    : _names(std::move(benchmarks))
{
    const auto start = std::chrono::steady_clock::now();
    const RetryPolicy policy = retryPolicyFromEnv();
    TraceCache *cache = TraceCache::global();

    // Per-benchmark outcome, index-aligned with _names so the
    // parallel workers never touch a shared container.
    struct Acquired
    {
        bool ok = false;
        bool fromCache = false;
        Trace trace;
        RunError error;
    };
    std::vector<Acquired> acquired(_names.size());

    std::atomic<std::size_t> next{0};
    const auto worker = [&]() {
        while (true) {
            const std::size_t index =
                next.fetch_add(1, std::memory_order_relaxed);
            if (index >= _names.size())
                return;
            const std::string &name = _names[index];
            Acquired &slot = acquired[index];
            std::string key;
            if (cache) {
                key = benchmarkTraceCacheKey(name, emit_conditionals);
                auto hit = cache->load(key);
                // Any load error is simply a miss. The name check
                // rejects a foreign file dropped into the cache
                // directory under our key.
                if (hit.ok() && hit.value().name() == name) {
                    slot.trace = std::move(hit).value();
                    slot.ok = true;
                    slot.fromCache = true;
                    continue;
                }
            }
            auto made = runWithRetries(policy, [&](unsigned attempt) {
                FaultInjector::global().check("trace", name, attempt);
                return generateBenchmarkTrace(name, emit_conditionals);
            });
            if (!made.ok()) {
                slot.error = made.error();
                continue;
            }
            slot.trace = std::move(made).value();
            slot.ok = true;
            if (cache) {
                // Best effort: a full disk degrades the cache, not
                // the run.
                auto stored = cache->store(key, slot.trace);
                if (!stored.ok()) {
                    warn("trace cache store for '%s' failed: %s",
                         name.c_str(),
                         stored.error().describe().c_str());
                }
            }
        }
    };

    const unsigned thread_count = static_cast<unsigned>(
        std::min<std::size_t>(simulationThreads(), _names.size()));
    if (thread_count <= 1) {
        worker();
    } else {
        std::vector<std::thread> threads;
        threads.reserve(thread_count);
        try {
            for (unsigned t = 0; t < thread_count; ++t)
                threads.emplace_back(worker);
        } catch (const std::system_error &exception) {
            warn("thread construction failed after %zu of %u trace "
                 "workers (%s); continuing degraded",
                 threads.size(), thread_count, exception.what());
        }
        if (threads.empty())
            worker();
        for (auto &thread : threads)
            thread.join();
    }

    for (std::size_t i = 0; i < _names.size(); ++i) {
        const std::string &name = _names[i];
        Acquired &slot = acquired[i];
        if (slot.ok) {
            if (slot.fromCache) {
                ++_traceStats.cacheHits;
                if (slot.trace.readPath() == TraceReadPath::Mmap)
                    ++_traceStats.mmapHits;
                else
                    ++_traceStats.streamHits;
            } else {
                ++_traceStats.generated;
            }
            _traces.emplace(name, std::move(slot.trace));
        } else {
            warn("trace generation for '%s' failed: %s", name.c_str(),
                 slot.error.describe().c_str());
            _failedTraces.emplace(name, slot.error);
        }
    }
    _traceStats.seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
}

SuiteRunner
SuiteRunner::avgSuite(bool emit_conditionals)
{
    return SuiteRunner(benchmarkGroups().avg, emit_conditionals);
}

SuiteRunner
SuiteRunner::fullSuite(bool emit_conditionals)
{
    std::vector<std::string> names = benchmarkGroups().avg;
    const auto &infrequent = benchmarkGroups().infrequent;
    names.insert(names.end(), infrequent.begin(), infrequent.end());
    return SuiteRunner(std::move(names), emit_conditionals);
}

const Trace &
SuiteRunner::trace(const std::string &benchmark) const
{
    const auto it = _traces.find(benchmark);
    IBP_ASSERT(it != _traces.end(), "benchmark '%s' not loaded",
               benchmark.c_str());
    return it->second;
}

unsigned
simulationThreads()
{
    if (const char *env = std::getenv("IBP_THREADS")) {
        // Clamp to >= 1 so IBP_THREADS=0 (or garbage) still yields
        // a usable serial run instead of silently ignoring the
        // override.
        return static_cast<unsigned>(
            std::max(1L, std::atol(env)));
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 4 : hw;
}

GridResult
SuiteRunner::run(const std::vector<SweepColumn> &columns,
                 RunSession &session) const
{
    const unsigned grid_id = session.nextGridId++;
    RunMetrics *metrics = session.metrics;
    CheckpointJournal *journal = session.checkpoint;
    const std::int64_t deadline_ns = static_cast<std::int64_t>(
        session.retry.cellDeadlineSeconds * 1e9);

    struct Job
    {
        const SweepColumn *column;
        const Trace *trace;
        const std::string *benchmark;
        double missPercent = 0.0;
        /** Completed by the single-pass phase; skipped per-cell. */
        bool done = false;
        bool failed = false;
        RunError error;
    };

    GridResult grid;
    std::vector<Job> jobs;
    jobs.reserve(columns.size() * _names.size());
    for (const auto &column : columns) {
        for (const auto &name : _names) {
            // A benchmark whose trace never materialised fails every
            // cell up front - no point retrying the simulation.
            const auto failed_trace = _failedTraces.find(name);
            if (failed_trace != _failedTraces.end()) {
                const RunError &cause = failed_trace->second;
                grid.setFailed(FailedCell{column.label, name,
                                          cause.describe(), cause.kind,
                                          cause.attempts});
                if (metrics) {
                    metrics->recordFailure(
                        FailureRecord{column.label, name,
                                      cause.describe(),
                                      errorKindName(cause.kind),
                                      cause.attempts});
                }
                continue;
            }
            // Resume: a journalled cell is restored verbatim, not
            // recomputed (it carries the full-precision miss rate).
            if (journal) {
                const auto restored =
                    journal->lookup(grid_id, column.label, name);
                if (restored) {
                    grid.set(column.label, name, *restored);
                    continue;
                }
            }
            jobs.push_back(
                Job{&column, &trace(name), &name, 0.0, false, false,
                    {}});
        }
    }

    const unsigned thread_count = static_cast<unsigned>(
        std::min<std::size_t>(simulationThreads(), jobs.size()));

    // One slot per worker carries the watchdog state. The attempt
    // currently running is published as an *epoch*: the worker bumps
    // it before arming a deadline, and the watchdog requests
    // cancellation of the epoch it observed, so a request that lands
    // after the attempt already finished names a dead epoch and the
    // next attempt's poll ignores it (the stale-cancel race the old
    // plain bool had).
    struct WorkerSlot
    {
        /** Epoch of the armed attempt, 0 when idle. */
        std::atomic<std::uint64_t> epoch{0};
        std::atomic<std::int64_t> deadlineNs{0};
        CancelToken token;
        /** Owner-thread counter; never reused within a slot. */
        std::uint64_t lastEpoch = 0;

        void
        arm(std::int64_t deadline_at)
        {
            token.armed = ++lastEpoch;
            epoch.store(token.armed, std::memory_order_release);
            deadlineNs.store(deadline_at, std::memory_order_release);
        }

        void
        disarm()
        {
            deadlineNs.store(0, std::memory_order_relaxed);
            epoch.store(0, std::memory_order_release);
            token.armed = 0;
        }
    };
    std::vector<WorkerSlot> slots(std::max(1u, thread_count));

    std::mutex wd_mutex;
    std::condition_variable wd_cv;
    bool wd_stop = false;
    std::thread watchdog;
    if (deadline_ns > 0 && !jobs.empty()) {
        watchdog = std::thread([&]() {
            std::unique_lock<std::mutex> lock(wd_mutex);
            while (!wd_stop) {
                wd_cv.wait_for(lock, std::chrono::milliseconds(20));
                const std::int64_t now = nowNs();
                for (auto &slot : slots) {
                    // Consistent (epoch, deadline) snapshot: if the
                    // worker swapped attempts between the two epoch
                    // reads, skip this tick and re-check in 20ms
                    // rather than cancel with a mismatched pair.
                    const std::uint64_t e1 =
                        slot.epoch.load(std::memory_order_acquire);
                    if (e1 == 0)
                        continue;
                    const std::int64_t deadline =
                        slot.deadlineNs.load(std::memory_order_acquire);
                    const std::uint64_t e2 =
                        slot.epoch.load(std::memory_order_acquire);
                    if (e1 != e2 || deadline == 0 || now < deadline)
                        continue;
                    slot.token.requested.store(
                        e1, std::memory_order_relaxed);
                }
            }
        });
    }

    const auto grid_start = std::chrono::steady_clock::now();

    // Shared by both phases: record one finished cell.
    const auto finishCell = [&](Job &job, const SimResult &result) {
        job.missPercent = result.missPercent();
        job.done = true;
        if (metrics) {
            // One record per finished cell - never inside the
            // per-branch simulation loop.
            CellMetrics cell;
            cell.column = job.column->label;
            cell.benchmark = *job.benchmark;
            cell.branches = result.branches;
            cell.seconds = result.seconds;
            cell.tableOccupancy = result.tableOccupancy;
            cell.tableCapacity = result.tableCapacity;
            metrics->recordCell(cell);
        }
        if (journal) {
            const auto appended = journal->append(CheckpointCell{
                grid_id, job.column->label, *job.benchmark,
                job.missPercent});
            if (!appended.ok()) {
                warn("checkpoint append failed for %s/%s: %s",
                     job.column->label.c_str(), job.benchmark->c_str(),
                     appended.error().describe().c_str());
            }
        }
    };

    const auto spawn = [&](const std::function<void(unsigned)> &work,
                           unsigned want) -> unsigned {
        if (want <= 1) {
            work(0);
            return 1;
        }
        std::vector<std::thread> threads;
        threads.reserve(want);
        try {
            for (unsigned t = 0; t < want; ++t)
                threads.emplace_back(work, t);
        } catch (const std::system_error &exception) {
            // Thread creation can fail under resource pressure; the
            // workers already spawned will drain the whole queue, so
            // degrade instead of dying.
            warn("thread construction failed after %zu of %u workers "
                 "(%s); continuing degraded",
                 threads.size(), want, exception.what());
        }
        if (threads.empty()) {
            warn("falling back to serial execution");
            work(0);
        }
        const unsigned used =
            static_cast<unsigned>(std::max<std::size_t>(
                1, threads.size()));
        for (auto &thread : threads)
            thread.join();
        return used;
    };

    unsigned threads_used = 1;

    // Phase 1 (opportunistic): feed all pending columns of a
    // benchmark from ONE trace traversal. Skipped entirely when the
    // fault injector is armed - injected "sim" faults are per-cell
    // by construction - and any failure inside a group (factory
    // error, watchdog cancellation, anything the engine throws)
    // simply leaves its jobs pending for phase 2, which re-runs them
    // under the full per-cell retry/deadline isolation. Results are
    // bit-identical either way (see simulateMany()).
    if (session.singlePass && !FaultInjector::global().armed() &&
        !jobs.empty()) {
        std::vector<std::vector<std::size_t>> groups;
        std::map<std::string, std::size_t> group_of;
        for (std::size_t j = 0; j < jobs.size(); ++j) {
            const auto [it, fresh] = group_of.try_emplace(
                *jobs[j].benchmark, groups.size());
            if (fresh)
                groups.emplace_back();
            groups[it->second].push_back(j);
        }

        std::atomic<std::size_t> next_group{0};
        const auto group_worker = [&](unsigned slot_index) {
            WorkerSlot &slot = slots[slot_index];
            while (true) {
                const std::size_t g = next_group.fetch_add(
                    1, std::memory_order_relaxed);
                if (g >= groups.size())
                    return;
                const std::vector<std::size_t> &members = groups[g];
                try {
                    std::vector<std::unique_ptr<IndirectPredictor>>
                        predictors;
                    std::vector<IndirectPredictor *> raw;
                    predictors.reserve(members.size());
                    raw.reserve(members.size());
                    for (const std::size_t j : members) {
                        auto predictor = jobs[j].column->make();
                        if (!predictor) {
                            throw RunException(RunError::permanent(
                                "predictor factory for '" +
                                jobs[j].column->label +
                                "' returned null"));
                        }
                        raw.push_back(predictor.get());
                        predictors.push_back(std::move(predictor));
                    }
                    if (deadline_ns > 0) {
                        // The whole-group deadline is the sum of the
                        // per-cell budgets it replaces.
                        slot.arm(nowNs() +
                                 deadline_ns *
                                     static_cast<std::int64_t>(
                                         members.size()));
                    }
                    SimOptions options;
                    options.cancel = &slot.token;
                    const std::vector<SimResult> results = simulateMany(
                        raw, *jobs[members.front()].trace, options);
                    slot.disarm();
                    for (std::size_t i = 0; i < members.size(); ++i)
                        finishCell(jobs[members[i]], results[i]);
                } catch (...) {
                    // Leave the group's jobs pending; phase 2 gives
                    // each cell its own isolated retries.
                    slot.disarm();
                }
            }
        };
        threads_used = std::max(
            threads_used,
            spawn(group_worker,
                  static_cast<unsigned>(std::min<std::size_t>(
                      thread_count, groups.size()))));
    }

    // Phase 2: per-cell isolation for everything still pending.
    std::atomic<std::size_t> next{0};
    const auto worker = [&](unsigned slot_index) {
        WorkerSlot &slot = slots[slot_index];
        while (true) {
            const std::size_t index =
                next.fetch_add(1, std::memory_order_relaxed);
            if (index >= jobs.size())
                return;
            Job &job = jobs[index];
            if (job.done)
                continue;
            const std::string fault_key = std::to_string(grid_id) +
                                          "/" + job.column->label +
                                          "/" + *job.benchmark;
            auto outcome =
                runWithRetries(session.retry, [&](unsigned attempt) {
                    if (deadline_ns > 0)
                        slot.arm(nowNs() + deadline_ns);
                    // The attempt must disarm on every exit path or
                    // the watchdog would target a dead epoch (and the
                    // old plain-bool design would have cancelled the
                    // *next* attempt).
                    struct Disarm
                    {
                        WorkerSlot &slot;
                        ~Disarm() { slot.disarm(); }
                    } disarm{slot};
                    FaultInjector::global().check("sim", fault_key,
                                                  attempt);
                    auto predictor = job.column->make();
                    if (!predictor) {
                        throw RunException(RunError::permanent(
                            "predictor factory for '" +
                            job.column->label + "' returned null"));
                    }
                    SimOptions options;
                    options.cancel = &slot.token;
                    return simulate(*predictor, *job.trace, options);
                });
            if (!outcome.ok()) {
                job.failed = true;
                job.error = outcome.error();
                if (metrics) {
                    metrics->recordFailure(FailureRecord{
                        job.column->label, *job.benchmark,
                        job.error.message,
                        errorKindName(job.error.kind),
                        job.error.attempts});
                }
                continue;
            }
            finishCell(job, outcome.value());
        }
    };

    std::size_t pending = 0;
    for (const auto &job : jobs) {
        if (!job.done)
            ++pending;
    }
    if (pending > 0) {
        threads_used = std::max(
            threads_used,
            spawn(worker, static_cast<unsigned>(std::min<std::size_t>(
                              thread_count, pending))));
    }

    if (watchdog.joinable()) {
        {
            std::lock_guard<std::mutex> lock(wd_mutex);
            wd_stop = true;
        }
        wd_cv.notify_one();
        watchdog.join();
    }

    if (metrics) {
        metrics->recordThreads(threads_used);
        metrics->recordRunWindow(
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - grid_start)
                .count());
        // Once per runner: whether this run paid the trace
        // generation cost or rode the cache (the CI cache-smoke job
        // asserts on these counters).
        if (!_traceStatsPublished.exchange(true)) {
            metrics->recordTraceSource(_traceStats.generated,
                                       _traceStats.mmapHits,
                                       _traceStats.streamHits,
                                       _traceStats.seconds);
        }
    }

    for (auto &job : jobs) {
        if (job.failed) {
            grid.setFailed(FailedCell{
                job.column->label, *job.benchmark, job.error.message,
                job.error.kind, job.error.attempts});
        } else {
            grid.set(job.column->label, *job.benchmark,
                     job.missPercent);
        }
    }
    return grid;
}

GridResult
SuiteRunner::run(const std::vector<SweepColumn> &columns,
                 RunMetrics *metrics) const
{
    RunSession session;
    session.metrics = metrics;
    session.retry = retryPolicyFromEnv();
    return run(columns, session);
}

std::map<std::string, double>
SuiteRunner::runOne(const PredictorFactory &factory,
                    RunMetrics *metrics) const
{
    const GridResult grid =
        run({SweepColumn{"only", factory}}, metrics);
    std::map<std::string, double> rates;
    for (const auto &name : _names) {
        if (grid.has("only", name))
            rates[name] = grid.get("only", name);
    }
    return rates;
}

std::vector<std::pair<std::string, std::vector<std::string>>>
SuiteRunner::coveredGroups() const
{
    const auto &groups = benchmarkGroups();
    // Coverage is about what this runner was *asked* to simulate,
    // not what survived trace generation: a group whose member
    // failed still renders (partially) instead of vanishing and
    // silently reshaping every table.
    const std::set<std::string> requested(_names.begin(),
                                          _names.end());
    const auto covered = [&](const std::vector<std::string> &members) {
        for (const auto &member : members) {
            if (requested.find(member) == requested.end())
                return false;
        }
        return !members.empty();
    };

    std::vector<std::pair<std::string, std::vector<std::string>>> out;
    if (covered(groups.avg))
        out.emplace_back("AVG", groups.avg);
    if (covered(groups.oo))
        out.emplace_back("AVG-OO", groups.oo);
    if (covered(groups.c))
        out.emplace_back("AVG-C", groups.c);
    if (covered(groups.avg100))
        out.emplace_back("AVG-100", groups.avg100);
    if (covered(groups.avg200))
        out.emplace_back("AVG-200", groups.avg200);
    if (covered(groups.infrequent))
        out.emplace_back("AVG-infreq", groups.infrequent);
    return out;
}

ResultTable
SuiteRunner::groupTable(const std::string &title, const GridResult &grid,
                        const std::vector<SweepColumn> &columns) const
{
    ResultTable table(title, "group");
    for (const auto &column : columns)
        table.addColumn(column.label);
    for (const auto &[group, members] : coveredGroups()) {
        const unsigned row = table.addRow(group);
        for (unsigned c = 0; c < columns.size(); ++c) {
            // Blank cell when the whole group failed; a partial
            // average is still rendered (ROBUSTNESS.md documents
            // the degraded semantics).
            if (grid.presentCount(columns[c].label, members) == 0)
                continue;
            table.set(row, c, grid.average(columns[c].label, members));
        }
    }
    return table;
}

ResultTable
SuiteRunner::benchmarkTable(const std::string &title,
                            const GridResult &grid,
                            const std::vector<SweepColumn> &columns) const
{
    ResultTable table(title, "benchmark");
    for (const auto &column : columns)
        table.addColumn(column.label);
    for (const auto &[group, members] : coveredGroups()) {
        const unsigned row = table.addRow(group);
        for (unsigned c = 0; c < columns.size(); ++c) {
            if (grid.presentCount(columns[c].label, members) == 0)
                continue;
            table.set(row, c, grid.average(columns[c].label, members));
        }
    }
    for (const auto &name : _names) {
        const unsigned row = table.addRow(name);
        for (unsigned c = 0; c < columns.size(); ++c) {
            if (grid.has(columns[c].label, name))
                table.set(row, c, grid.get(columns[c].label, name));
        }
    }
    return table;
}

} // namespace ibp
