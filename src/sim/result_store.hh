/**
 * @file
 * Content-addressed on-disk store of simulation results.
 *
 * The trace cache (src/trace/trace_cache.hh) made trace acquisition
 * incremental; this store does the same for the simulation itself.
 * Each (configuration x benchmark) cell is keyed by everything that
 * determines its counters:
 *
 *   cell key = FNV-1a( store format version | simulator version |
 *                      trace cache key | canonical spec hash |
 *                      table implementation )
 *
 * The trace cache key already folds in the generator version, the
 * full benchmark profile, the scaled event count (and therefore
 * IBP_EVENTS / --quick) and the seed; the spec hash is the versioned
 * canonical encoding from core/spec_codec.hh; the simulator version
 * constant below conservatively invalidates EVERYTHING when the
 * simulation semantics change. A warm grid re-run therefore loads
 * exactly the cells whose inputs did not change and re-simulates the
 * rest - bit-identical either way, because entries carry the integer
 * counters the miss rates are derived from.
 *
 * Entries are small JSON files written via the shared
 * tmp+fsync+atomic-rename path, each carrying its own key echo and
 * an FNV-1a checksum over the payload. A corrupt, truncated, or
 * foreign entry is quarantined - renamed to `<file>.corrupt` and
 * counted as invalidated - mirroring the daemon's pending.json
 * policy (docs/SERVICE.md): never fatal, never silently served.
 *
 * The store stays out of the way of fault injection: SuiteRunner
 * bypasses it entirely while the global injector is armed, so
 * injected faults always reach a real simulation.
 */

#ifndef IBP_SIM_RESULT_STORE_HH
#define IBP_SIM_RESULT_STORE_HH

#include <cstdint>
#include <string>

#include "robust/error.hh"

namespace ibp {

/**
 * Exclusive right to simulate one store cell, held while the owner
 * computes it (sharded lanes and overlapping requests race for it;
 * losers defer and serve the cell from the store once the owner
 * persists it). Backed by an flock(2) on a `<cell>.claim` sidecar
 * file, so the kernel releases a dead owner's claim automatically -
 * no pid files, no TTLs, no stale-claim reaping.
 *
 * flock locks the open file description, not the process, so two
 * runners inside ONE process exclude each other exactly like two
 * lane processes do. Move-only; the destructor releases.
 */
class CellClaim
{
  public:
    enum class State
    {
        /** Default-constructed: no claim was attempted. */
        None,
        /** We hold the cell; simulate it, then release(). */
        Acquired,
        /** Someone else holds it; defer and poll the store. */
        Busy,
    };

    CellClaim() = default;
    CellClaim(CellClaim &&other) noexcept;
    CellClaim &operator=(CellClaim &&other) noexcept;
    CellClaim(const CellClaim &) = delete;
    CellClaim &operator=(const CellClaim &) = delete;
    ~CellClaim();

    State state() const { return _state; }
    bool acquired() const { return _state == State::Acquired; }
    bool busy() const { return _state == State::Busy; }

    /** Drop the claim (unlink the sidecar, then close the lock).
     *  Idempotent; called by the destructor. */
    void release();

  private:
    friend class ResultStore;
    CellClaim(State state, int fd, std::string path)
        : _state(state), _fd(fd), _path(std::move(path))
    {
    }

    State _state = State::None;
    int _fd = -1;
    std::string _path;
};

/** One persisted simulation cell. */
struct StoredResult
{
    std::string benchmark;
    /** Predictor name, informational (keys never depend on it). */
    std::string predictor;
    /**
     * False for entries written back from a checkpoint journal,
     * which records only the full-precision miss rate: such entries
     * restore the grid value but carry no counters to replay into
     * cell telemetry.
     */
    bool hasCounters = true;
    std::uint64_t branches = 0;
    std::uint64_t misses = 0;
    std::uint64_t noPrediction = 0;
    std::uint64_t tableOccupancy = 0;
    std::uint64_t tableCapacity = 0;
    /** Wall times of the run that computed the cell. */
    double seconds = 0.0;
    double groupSeconds = 0.0;
    bool sharedTraversal = false;
    /** Authoritative when hasCounters is false. */
    double missPercent = 0.0;
};

class ResultStore
{
  public:
    /** Default directory used by `--result-store` with no value. */
    static constexpr const char *kDefaultDirectory =
        "out/result-store";

    /**
     * Simulator version constant: the content-address of the
     * simulation SEMANTICS. Bump whenever simulate()/simulateMany()
     * or any predictor's behaviour changes in a counter-visible way;
     * every stored cell then misses and is recomputed.
     */
    static constexpr std::uint64_t kSimulatorVersion = 1;

    /**
     * The version folded into cell keys: kSimulatorVersion, unless
     * the IBP_RESULT_STORE_VERSION environment variable overrides it
     * (CI uses the override to prove a version bump invalidates a
     * warm store without recompiling).
     */
    static std::uint64_t effectiveSimulatorVersion();

    explicit ResultStore(std::string directory);

    /**
     * The process-wide store, armed from the IBP_RESULT_STORE
     * environment variable (its value is the store directory) on
     * first use, or by configureGlobal(). nullptr when disabled.
     */
    static ResultStore *global();

    /**
     * Re-point the process-wide store at @p directory ("" disables).
     * Not thread-safe against concurrent global() users; call from
     * startup or single-threaded test setup only.
     */
    static void configureGlobal(const std::string &directory);

    const std::string &directory() const { return _directory; }

    /**
     * Content address of one cell. @p traceKey is
     * benchmarkTraceCacheKey(...); @p specHash is the canonical
     * predictor-spec hash (core/spec_codec.hh). The effective
     * simulator version and the active table implementation are
     * folded in here.
     */
    static std::string cellKey(const std::string &traceKey,
                               std::uint64_t specHash);

    /** File an entry for @p key lives in: `<dir>/<key>.json`. */
    std::string pathFor(const std::string &key) const;

    enum class LoadStatus
    {
        Hit,
        /** No entry on disk (the common cold case). */
        Miss,
        /** Entry existed but failed validation and was quarantined
         *  (renamed to `<file>.corrupt`). */
        Invalidated,
    };

    struct LoadOutcome
    {
        LoadStatus status = LoadStatus::Miss;
        StoredResult result;
    };

    /**
     * Load the entry for @p key. Validation covers JSON
     * well-formedness, the embedded checksum, and the key echo (a
     * foreign file under our name); any failure quarantines the
     * entry and reports Invalidated. Never throws, never fatal.
     */
    LoadOutcome load(const std::string &key) const;

    /**
     * Durably persist @p result under @p key (tmp+fsync+rename; the
     * directory is created if needed). Failures are reported, not
     * fatal: a full disk degrades the store, never the run. When
     * IBP_CACHE_MAX_BYTES is set, a successful store sweeps the
     * directory back under the cap (robust/cache_sweep.hh).
     */
    Result<void> store(const std::string &key,
                       const StoredResult &result) const;

    /** True when an entry file for @p key exists (no validation);
     *  the exactly-once journal write-back check. */
    bool contains(const std::string &key) const;

    /**
     * Try to acquire the exclusive simulate-this-cell claim for
     * @p key (non-blocking). Returns an Acquired claim on success,
     * a Busy one when a live peer holds it. An I/O failure (store
     * directory gone, fd exhaustion) degrades to a lockless
     * Acquired claim: the worst case is a duplicate simulation
     * whose duplicate store() is made benign by the atomic-rename
     * write path - availability over exclusivity.
     */
    CellClaim tryClaim(const std::string &key) const;

  private:
    std::string _directory;
};

} // namespace ibp

#endif // IBP_SIM_RESULT_STORE_HH
