/**
 * @file
 * Trace-driven simulation of an indirect branch predictor.
 *
 * Follows the paper's methodology exactly: every dynamic indirect
 * branch (calls, jumps, switches; returns excluded) is first
 * predicted, then the predictor is updated with the resolved target.
 * Cold-start misses count. Conditional branches are passed through to
 * predictors that consume them (Target Cache, the section 3.3
 * conditional-history variant) and ignored by the rest.
 */

#ifndef IBP_SIM_SIMULATOR_HH
#define IBP_SIM_SIMULATOR_HH

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/flat_table.hh"
#include "core/predictor.hh"
#include "trace/trace.hh"

namespace ibp {

class SweepKernel;

/** Outcome of one predictor/trace run. */
struct SimResult
{
    std::string benchmark;
    std::string predictor;
    std::uint64_t branches = 0;
    std::uint64_t misses = 0;
    /** Misses where the predictor produced no target at all. */
    std::uint64_t noPrediction = 0;
    std::uint64_t tableOccupancy = 0;
    std::uint64_t tableCapacity = 0;
    /** Wall time of the simulation loop, in seconds. For a shared
     *  traversal (simulateMany) this is the group wall time divided
     *  evenly - synthetic, only the aggregate is physical. */
    double seconds = 0.0;
    /** Wall time of the whole traversal that produced this result;
     *  equals `seconds` for a solo simulate(), the undivided group
     *  time for a shared traversal. */
    double groupSeconds = 0.0;
    /** True when this result came out of a shared traversal, i.e.
     *  `seconds` is synthetic (see groupSeconds). */
    bool sharedTraversal = false;

    /** Misprediction rate in percent (the paper's metric). */
    double
    missPercent() const
    {
        return branches == 0 ? 0.0
                             : 100.0 * static_cast<double>(misses) /
                                   static_cast<double>(branches);
    }

    /** Fraction of table entries in use (utilisation, section 5.2.1). */
    double
    utilisation() const
    {
        return tableCapacity == 0
                   ? 0.0
                   : static_cast<double>(tableOccupancy) /
                         static_cast<double>(tableCapacity);
    }
};

/**
 * Epoch-tagged cooperative cancellation token.
 *
 * A watchdog cancelling "whatever the worker is doing" with a plain
 * bool is racy: after attempt N's deadline expires, the watchdog can
 * store the flag *after* the worker has already cleared it and
 * started attempt N+1, spuriously cancelling a healthy attempt. The
 * token closes that race by naming the victim: the owner thread
 * bumps `armed` to a fresh epoch before each attempt, the watchdog
 * requests cancellation *of the epoch it observed*, and the poll
 * only fires when the requested epoch matches the attempt currently
 * running. A stale request aimed at a finished attempt matches
 * nothing and is ignored.
 */
struct CancelToken
{
    /** Epoch the watchdog wants cancelled (atomic store); 0 = none. */
    std::atomic<std::uint64_t> requested{0};

    /**
     * Epoch of the attempt currently running. Written by the owner
     * thread before each attempt and read only on that thread, so it
     * needs no atomicity; 0 means no attempt is armed.
     */
    std::uint64_t armed = 0;

    bool
    cancelled() const
    {
        return armed != 0 &&
               requested.load(std::memory_order_relaxed) == armed;
    }
};

/**
 * Telemetry of one simulateMany() block traversal (see
 * SimOptions::traversal): how the records were fed (zero-copy
 * columnar blocks vs per-block transposes) and how the predictor
 * columns were partitioned between the batched lane engine and the
 * generic record-at-a-time path.
 */
struct TraversalStats
{
    /** Blocks served zero-copy from a columnar (v3 mmap) trace. */
    std::uint64_t columnarBlocks = 0;
    /** Blocks transposed from record storage into scratch columns. */
    std::uint64_t transposedBlocks = 0;
    /** Records skipped wholesale by the block classifier (returns,
     *  plus conditionals when nothing in the traversal consumes
     *  them). */
    std::uint64_t skippedRecords = 0;
    /** Predictor columns executed by the batched lane engine. */
    std::uint32_t laneColumns = 0;
    /** Columns that ran the generic record-at-a-time path. */
    std::uint32_t genericColumns = 0;
    /** Distinct state machines (dedup owners) the lane engine
     *  probes and trains once per record. */
    std::uint32_t laneMachines = 0;
};

/** Extra knobs for a simulation run. */
struct SimOptions
{
    /** Skip this many leading indirect branches (warm-up window
     *  excluded from the counts, still used for training). */
    std::uint64_t warmupBranches = 0;

    /** Collect per-site miss counts (costs a hash update per branch). */
    bool perSiteMisses = false;

    /**
     * Cooperative cancellation token, polled every few thousand
     * records (the poll is a relaxed atomic load, invisible next to
     * the predictor work). When the token reports cancelled - the
     * SuiteRunner watchdog requests this on a per-cell deadline -
     * simulate() throws RunException with a timeout RunError.
     * nullptr disables.
     */
    const CancelToken *cancel = nullptr;

    /**
     * Fused sweep kernel driving the shared first-level history of
     * the predictors in this run (simulateMany only). When set, the
     * traversal calls kernel->observeConditional() after offering a
     * conditional to the predictors and kernel->commit() after the
     * per-predictor update loop of each indirect branch; predictors
     * bound to the kernel suppress their own history pushes. The
     * caller owns kernel lifetime and must have bound the predictors
     * (SweepKernel::tryJoin) and called finalize(). nullptr disables.
     */
    SweepKernel *kernel = nullptr;

    /** Optional out-parameter: simulateMany() fills it with block
     *  traversal telemetry (metrics.simd). nullptr disables. */
    TraversalStats *traversal = nullptr;
};

/**
 * Per-site miss accounting (populated when requested). Both counters
 * for a site live in one FlatMap slot, so the hot loop pays a single
 * hash probe per branch instead of two ordered-map walks; simulate()
 * pre-sizes the map from Trace::siteCountHint() so collection never
 * rehashes mid-run.
 */
struct SiteMissStats
{
    struct SiteCounts
    {
        std::uint64_t executions = 0;
        std::uint64_t misses = 0;
    };

    FlatMap<Addr, SiteCounts> sites;

    std::uint64_t
    executions(Addr pc) const
    {
        const SiteCounts *counts = sites.find(pc);
        return counts == nullptr ? 0 : counts->executions;
    }

    std::uint64_t
    misses(Addr pc) const
    {
        const SiteCounts *counts = sites.find(pc);
        return counts == nullptr ? 0 : counts->misses;
    }
};

/** Run @p predictor over @p trace from a cold state. */
SimResult simulate(IndirectPredictor &predictor, const Trace &trace,
                   const SimOptions &options = {},
                   SiteMissStats *siteStats = nullptr);

/**
 * Single-pass multi-predictor engine: run every predictor of
 * @p predictors over @p trace in ONE trace traversal, from cold
 * state, producing exactly the SimResult counters simulate() would
 * have produced per predictor (the predictors are independent, so
 * feeding them the same record stream is observationally identical -
 * the differential test in tests/sim pins this bit-for-bit).
 *
 * This is how SuiteRunner feeds all columns of a sweep from one
 * traversal per benchmark instead of one per cell, which removes the
 * dominant memory-bandwidth cost of wide sweeps. Restrictions versus
 * the per-cell path: one shared cancellation token covers the whole
 * traversal (a timeout aborts all predictors at once - callers fall
 * back to per-cell isolation, see docs/PERFORMANCE.md), per-site
 * stats are not supported, and each result's `seconds` is synthetic:
 * the traversal wall time divided evenly across predictors, with the
 * real shared wall time in `groupSeconds` and `sharedTraversal` set
 * (only the aggregate of `seconds` is physically meaningful).
 *
 * When options.kernel is set, predictors bound to it share their
 * first-level history through the kernel (see SimOptions::kernel);
 * the counters remain bit-identical to the unfused run.
 *
 * Null predictor pointers are not allowed. An empty span returns an
 * empty vector without touching the trace.
 */
std::vector<SimResult>
simulateMany(std::span<IndirectPredictor *const> predictors,
             const Trace &trace, const SimOptions &options = {});

} // namespace ibp

#endif // IBP_SIM_SIMULATOR_HH
