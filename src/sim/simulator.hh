/**
 * @file
 * Trace-driven simulation of an indirect branch predictor.
 *
 * Follows the paper's methodology exactly: every dynamic indirect
 * branch (calls, jumps, switches; returns excluded) is first
 * predicted, then the predictor is updated with the resolved target.
 * Cold-start misses count. Conditional branches are passed through to
 * predictors that consume them (Target Cache, the section 3.3
 * conditional-history variant) and ignored by the rest.
 */

#ifndef IBP_SIM_SIMULATOR_HH
#define IBP_SIM_SIMULATOR_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

#include "core/predictor.hh"
#include "trace/trace.hh"

namespace ibp {

/** Outcome of one predictor/trace run. */
struct SimResult
{
    std::string benchmark;
    std::string predictor;
    std::uint64_t branches = 0;
    std::uint64_t misses = 0;
    /** Misses where the predictor produced no target at all. */
    std::uint64_t noPrediction = 0;
    std::uint64_t tableOccupancy = 0;
    std::uint64_t tableCapacity = 0;
    /** Wall time of the simulation loop, in seconds. */
    double seconds = 0.0;

    /** Misprediction rate in percent (the paper's metric). */
    double
    missPercent() const
    {
        return branches == 0 ? 0.0
                             : 100.0 * static_cast<double>(misses) /
                                   static_cast<double>(branches);
    }

    /** Fraction of table entries in use (utilisation, section 5.2.1). */
    double
    utilisation() const
    {
        return tableCapacity == 0
                   ? 0.0
                   : static_cast<double>(tableOccupancy) /
                         static_cast<double>(tableCapacity);
    }
};

/** Extra knobs for a simulation run. */
struct SimOptions
{
    /** Skip this many leading indirect branches (warm-up window
     *  excluded from the counts, still used for training). */
    std::uint64_t warmupBranches = 0;

    /** Collect per-site miss counts (costs a hash update per branch). */
    bool perSiteMisses = false;

    /**
     * Cooperative cancellation flag, polled every few thousand
     * records (the poll is a relaxed atomic load, invisible next to
     * the predictor work). When it flips true - the SuiteRunner
     * watchdog does this on a per-cell deadline - simulate() throws
     * RunException with a timeout RunError. nullptr disables.
     */
    const std::atomic<bool> *cancel = nullptr;
};

/** Per-site miss accounting (populated when requested). */
struct SiteMissStats
{
    std::map<Addr, std::uint64_t> executions;
    std::map<Addr, std::uint64_t> misses;
};

/** Run @p predictor over @p trace from a cold state. */
SimResult simulate(IndirectPredictor &predictor, const Trace &trace,
                   const SimOptions &options = {},
                   SiteMissStats *siteStats = nullptr);

} // namespace ibp

#endif // IBP_SIM_SIMULATOR_HH
